(** Independent cross-iteration dependence re-derivation. *)

open Janus_vx
open Janus_analysis

type verdict = {
  v_carried : string list;
  v_ambiguous : string list;
}

let pp_verdict ppf v =
  let pp_list name = function
    | [] -> ()
    | xs ->
      Format.fprintf ppf "@[<v2>%s:@ %a@]@ " name
        (Format.pp_print_list Format.pp_print_string)
        xs
  in
  Format.fprintf ppf "@[<v>";
  pp_list "carried" v.v_carried;
  pp_list "ambiguous" v.v_ambiguous;
  if v.v_carried = [] && v.v_ambiguous = [] then
    Format.fprintf ppf "independent";
  Format.fprintf ppf "@]"

let gp_bit r = 1 lsl Reg.gp_index r
let fp_bit r = 1 lsl Reg.fp_index r

(* accesses further apart than a cache line on the same induction
   expression are treated as distinct objects, exactly the clustering
   threshold the classifier uses; anything closer is one array *)
let same_array_distance = 64

(* ------------------------------------------------------------------ *)
(* Register values along one iteration                                 *)
(*                                                                     *)
(* The recurrences compilers actually emit are rarely a single         *)
(* [add r, 1]: the iterator advances through copy chains               *)
(* (mov t, i; add t, 1; mov i, t) and reductions accumulate through    *)
(* scratch registers. A small forward symbolic walk over the body      *)
(* resolves every register to (initial value of some register + known  *)
(* offset), an accumulation of one, or opaque — flow-sensitively, so   *)
(* an address computed from a copy of the iterator still looks         *)
(* strided.                                                            *)
(* ------------------------------------------------------------------ *)

type gstate =
  | Gaff of Reg.gp * int   (** initial value of the register, plus offset *)
  | Gacc of Reg.gp         (** initial value folded with loop-varying data *)
  | Gopaque

type fstate =
  | Faff of Reg.fp         (** equals the register's initial value *)
  | Facc of Reg.fp * Insn.fbin
  | Fopaque

type walk = {
  g : (Reg.gp, gstate) Hashtbl.t;
  f : (Reg.fp, fstate) Hashtbl.t;
  mutable observed_g : int;   (* origins read outside their own recurrence *)
  mutable observed_f : int;
}

let gstate w r =
  match Hashtbl.find_opt w.g r with Some s -> s | None -> Gaff (r, 0)

let fstate w r =
  match Hashtbl.find_opt w.f r with Some s -> s | None -> Faff r

let g_origin w r =
  match gstate w r with Gaff (o, _) | Gacc o -> Some o | Gopaque -> None

let f_origin w r =
  match fstate w r with Faff o | Facc (o, _) -> Some o | Fopaque -> None

let observe_g w r =
  match g_origin w r with
  | Some o -> w.observed_g <- w.observed_g lor gp_bit o
  | None -> ()

let observe_f w r =
  match f_origin w r with
  | Some o -> w.observed_f <- w.observed_f lor fp_bit o
  | None -> ()

let fop_origin w = function
  | Operand.Freg s -> f_origin w s
  | Operand.Fmem _ -> None

(* one instruction; [benign] registers are the ones this transfer
   itself consumes as part of a recognised recurrence shape *)
let walk_insn w (i : Insn.t) =
  let mark_uses ?(benign_g = []) ?(benign_f = []) () =
    List.iter
      (fun r -> if not (List.mem r benign_g) then observe_g w r)
      (Insn.gp_uses i);
    List.iter
      (fun r -> if not (List.mem r benign_f) then observe_f w r)
      (Insn.fp_uses i)
  in
  let kill_g r = Hashtbl.replace w.g r Gopaque in
  let kill_f r = Hashtbl.replace w.f r Fopaque in
  let kill_all_defs () =
    List.iter kill_g (Insn.gp_defs i);
    List.iter kill_f (Insn.fp_defs i)
  in
  match i with
  | Insn.Mov (Operand.Reg d, Operand.Reg s) ->
    Hashtbl.replace w.g d (gstate w s);
    mark_uses ~benign_g:[ s ] ()
  | Insn.Alu ((Insn.Add | Insn.Sub) as op, Operand.Reg d, Operand.Imm k) ->
    let k = Int64.to_int k in
    let k = if op = Insn.Add then k else -k in
    (match gstate w d with
     | Gaff (o, c) -> Hashtbl.replace w.g d (Gaff (o, c + k))
     | Gacc _ | Gopaque -> ());
    mark_uses ~benign_g:[ d ] ()
  | Insn.Alu ((Insn.Add | Insn.Sub), Operand.Reg d, src) ->
    let src_origin =
      match src with Operand.Reg s -> g_origin w s | _ -> None
    in
    (match gstate w d with
     | (Gaff (o, _) | Gacc o) when src_origin <> Some o ->
       Hashtbl.replace w.g d (Gacc o)
     | _ -> kill_g d);
    mark_uses ~benign_g:[ d ] ()
  | Insn.Lea (d, { Operand.base = Some b; index = None; disp; _ }) ->
    (match gstate w b with
     | Gaff (o, c) -> Hashtbl.replace w.g d (Gaff (o, c + disp))
     | Gacc _ | Gopaque -> kill_g d);
    mark_uses ~benign_g:[ b ] ()
  | Insn.Fmov (_, Operand.Freg d, Operand.Freg s) ->
    Hashtbl.replace w.f d (fstate w s);
    mark_uses ~benign_f:[ s ] ()
  | Insn.Fbin (_, ((Insn.Fadd | Insn.Fmul) as op), d, src) ->
    let src_origin = fop_origin w src in
    (match fstate w d with
     | Faff o when src_origin <> Some o -> Hashtbl.replace w.f d (Facc (o, op))
     | Facc (o, op0) when op0 = op && src_origin <> Some o -> ()
     | _ -> kill_f d);
    mark_uses ~benign_f:[ d ] ()
  | _ ->
    mark_uses ();
    kill_all_defs ()

(* ------------------------------------------------------------------ *)

let rederive (f : Cfg.func) (l : Looptree.loop) : verdict =
  let body =
    List.filter_map (Hashtbl.find_opt f.Cfg.block_at) l.Looptree.body
  in
  let in_body = Hashtbl.create 16 in
  List.iter (fun (b : Cfg.bblock) -> Hashtbl.replace in_body b.Cfg.baddr ()) body;
  let insns =
    List.concat_map (fun (b : Cfg.bblock) -> Array.to_list b.Cfg.insns) body
  in
  let insn_addrs = Hashtbl.create 64 in
  List.iter (fun (ii : Cfg.insn_info) -> Hashtbl.replace insn_addrs ii.Cfg.addr ())
    insns;
  (* definition sites inside the body, per register *)
  let defs : (Reg.gp, Insn.t list) Hashtbl.t = Hashtbl.create 16 in
  let fdefs : (Reg.fp, Insn.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ii : Cfg.insn_info) ->
       List.iter
         (fun r ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt defs r) in
            Hashtbl.replace defs r (ii.Cfg.insn :: prev))
         (Insn.gp_defs ii.Cfg.insn);
       List.iter
         (fun r ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt fdefs r) in
            Hashtbl.replace fdefs r (ii.Cfg.insn :: prev))
         (Insn.fp_defs ii.Cfg.insn))
    insns;
  let defined r = Hashtbl.mem defs r in
  (* the body as one straight-line chain header..latch, when it is one *)
  let chain =
    let rec go acc (b : Cfg.bblock) visited =
      let inner =
        List.filter
          (fun s -> Hashtbl.mem in_body s && s <> l.Looptree.header)
          b.Cfg.succs
      in
      let back = List.mem l.Looptree.header b.Cfg.succs in
      match inner, back with
      | [], true -> Some (List.rev (b :: acc))
      | [ s ], false when not (List.mem s visited) -> (
          match Hashtbl.find_opt f.Cfg.block_at s with
          | Some nb -> go (b :: acc) nb (s :: visited)
          | None -> None)
      | _ -> None
    in
    match Hashtbl.find_opt f.Cfg.block_at l.Looptree.header with
    | Some hb -> go [] hb [ l.Looptree.header ]
    | None -> None
  in
  let carried = ref [] and ambiguous = ref [] in
  let seen = Hashtbl.create 16 in
  let note bucket msg =
    if not (Hashtbl.mem seen msg) then begin
      Hashtbl.replace seen msg ();
      bucket := msg :: !bucket
    end
  in
  (* per-definition advance, the fallback view for branchy bodies *)
  let flat_step r =
    match Hashtbl.find_opt defs r with
    | None | Some [] -> None
    | Some ds ->
      let step_of = function
        | Insn.Alu (Insn.Add, Operand.Reg r', Operand.Imm k) when r' = r ->
          Some (Int64.to_int k)
        | Insn.Alu (Insn.Sub, Operand.Reg r', Operand.Imm k) when r' = r ->
          Some (- Int64.to_int k)
        | Insn.Lea (r', { Operand.base = Some b; index = None; disp; _ })
          when r' = r && b = r ->
          Some disp
        | _ -> None
      in
      let steps = List.map step_of ds in
      if List.for_all Option.is_some steps then
        Some (List.fold_left (fun a s -> a + Option.get s) 0 steps)
      else None
  in
  let flat_iv r =
    defined r && (match flat_step r with Some s -> s <> 0 | None -> false)
  in
  (* symbolic walk over the chain, resolving every memory operand's
     address registers against the machine state at its program point *)
  let w =
    { g = Hashtbl.create 16; f = Hashtbl.create 16;
      observed_g = 0; observed_f = 0 }
  in
  let accesses = ref [] in
  (match chain with
   | Some blocks ->
     List.iter
       (fun (b : Cfg.bblock) ->
          Array.iter
            (fun (ii : Cfg.insn_info) ->
               let resolve r =
                 match gstate w r with
                 | Gaff (o, c) -> Some (o, c)
                 | Gacc _ | Gopaque -> None
               in
               let record is_w ((m : Operand.mem), bytes) =
                 accesses :=
                   ( ii.Cfg.addr, is_w, bytes, m,
                     Option.map resolve m.Operand.base,
                     Option.map resolve m.Operand.index )
                   :: !accesses
               in
               List.iter (record true) (Insn.mems_written ii.Cfg.insn);
               List.iter (record false) (Insn.mems_read ii.Cfg.insn);
               walk_insn w ii.Cfg.insn)
            b.Cfg.insns)
       blocks
   | None ->
     (* branchy body: only invariant and simple self-stepping registers
        resolve; everything else is opaque *)
     let resolve r =
       if not (defined r) then Some (r, 0)
       else if flat_iv r then Some (r, 0)
       else None
     in
     List.iter
       (fun (ii : Cfg.insn_info) ->
          let record is_w ((m : Operand.mem), bytes) =
            accesses :=
              ( ii.Cfg.addr, is_w, bytes, m,
                Option.map resolve m.Operand.base,
                Option.map resolve m.Operand.index )
              :: !accesses
          in
          List.iter (record true) (Insn.mems_written ii.Cfg.insn);
          List.iter (record false) (Insn.mems_read ii.Cfg.insn))
       insns);
  let net_step r =
    if not (defined r) then Some 0
    else
      match chain with
      | Some _ -> (
          match gstate w r with Gaff (o, c) when o = r -> Some c | _ -> None)
      | None -> flat_step r
  in
  let iv_like r = match net_step r with Some s -> s <> 0 | None -> false in
  let preserved r = net_step r = Some 0 in
  (* accumulators: the walk's verdict when available, the single-shape
     pattern match otherwise; both require the running value to stay
     inside its own recurrence *)
  let gp_accumulator r =
    match chain with
    | Some _ ->
      (match gstate w r with
       | Gacc o when o = r -> w.observed_g land gp_bit r = 0
       | _ -> false)
    | None -> (
        match Hashtbl.find_opt defs r with
        | None | Some [] -> false
        | Some ds ->
          let is_acc = function
            | Insn.Alu ((Insn.Add | Insn.Sub), Operand.Reg r', src)
              when r' = r ->
              not (List.mem r (Insn.gp_uses_of_operand src))
            | _ -> false
          in
          List.for_all is_acc ds
          && List.for_all
               (fun (ii : Cfg.insn_info) ->
                  (not (List.mem r (Insn.gp_uses ii.Cfg.insn)))
                  || is_acc ii.Cfg.insn)
               insns)
  in
  let fp_accumulator r =
    match chain with
    | Some _ ->
      (match fstate w r with
       | Facc (o, _) when o = r -> w.observed_f land fp_bit r = 0
       | _ -> false)
    | None -> (
        match Hashtbl.find_opt fdefs r with
        | None | Some [] -> false
        | Some ds ->
          let is_acc = function
            | Insn.Fbin (_, (Insn.Fadd | Insn.Fmul), r', src) when r' = r ->
              (match src with
               | Operand.Freg x -> x <> r
               | Operand.Fmem _ -> true)
            | _ -> false
          in
          List.for_all is_acc ds
          && List.for_all
               (fun (ii : Cfg.insn_info) ->
                  (not (List.mem r (Insn.fp_uses ii.Cfg.insn)))
                  || is_acc ii.Cfg.insn)
               insns)
  in
  let fp_preserved r =
    match chain with
    | Some _ -> (match fstate w r with Faff o -> o = r | _ -> false)
    | None -> false
  in
  (* loop-local liveness: which registers are read, on some path inside
     the loop starting at the header, before being redefined. Unlike
     whole-function liveness this ignores uses on exit paths, so a
     value merely escaping the loop does not look like a recurrence. *)
  let gen_kill (b : Cfg.bblock) =
    let gg = ref 0 and kg = ref 0 and gf = ref 0 and kf = ref 0 in
    Array.iter
      (fun (ii : Cfg.insn_info) ->
         let u =
           List.fold_left (fun m r -> m lor gp_bit r) 0 (Insn.gp_uses ii.Cfg.insn)
         and d =
           List.fold_left (fun m r -> m lor gp_bit r) 0 (Insn.gp_defs ii.Cfg.insn)
         and fu =
           List.fold_left (fun m r -> m lor fp_bit r) 0 (Insn.fp_uses ii.Cfg.insn)
         and fd =
           List.fold_left (fun m r -> m lor fp_bit r) 0 (Insn.fp_defs ii.Cfg.insn)
         in
         gg := !gg lor (u land lnot !kg);
         kg := !kg lor d;
         gf := !gf lor (fu land lnot !kf);
         kf := !kf lor fd)
      b.Cfg.insns;
    (!gg, !kg, !gf, !kf)
  in
  let gk = List.map (fun b -> (b, gen_kill b)) body in
  let live_in : (int, int * int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (b : Cfg.bblock) -> Hashtbl.replace live_in b.Cfg.baddr (0, 0))
    body;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun ((b : Cfg.bblock), (gg, kg, gf, kf)) ->
         let og, of_ =
           List.fold_left
             (fun (ag, af) s ->
                if Hashtbl.mem in_body s then
                  let sg, sf =
                    Option.value ~default:(0, 0) (Hashtbl.find_opt live_in s)
                  in
                  (ag lor sg, af lor sf)
                else (ag, af))
             (0, 0) b.Cfg.succs
         in
         let ng = gg lor (og land lnot kg)
         and nf = gf lor (of_ land lnot kf) in
         let cg, cf = Hashtbl.find live_in b.Cfg.baddr in
         if ng <> cg || nf <> cf then begin
           Hashtbl.replace live_in b.Cfg.baddr (ng, nf);
           changed := true
         end)
      gk
  done;
  let header_live_g, header_live_f =
    Option.value ~default:(-1, -1) (Hashtbl.find_opt live_in l.Looptree.header)
  in
  (* reaching definitions at header entry: does a body definition of r
     flow back around the latch? *)
  let reach = Reachdefs.compute f in
  let header_reaching =
    match Hashtbl.find_opt f.Cfg.block_at l.Looptree.header with
    | Some b when Array.length b.Cfg.insns > 0 ->
      Reachdefs.reaching_before reach ~addr:b.Cfg.insns.(0).Cfg.addr
    | _ -> Reachdefs.DefSet.empty
  in
  let body_def_reaches_header code =
    Reachdefs.DefSet.exists
      (fun (c, a) -> c = code && Hashtbl.mem insn_addrs a)
      header_reaching
  in
  (* --- register recurrences --- *)
  List.iter
    (fun r ->
       if
         r <> Reg.RSP && defined r
         && header_live_g land gp_bit r <> 0
         && body_def_reaches_header (Reachdefs.gp_code r)
         && (not (iv_like r))
         && (not (preserved r))
         && not (gp_accumulator r)
       then
         note carried
           (Fmt.str "register %s carries a value across iterations"
              (Reg.gp_name r)))
    Reg.all_gp;
  List.iter
    (fun r ->
       if
         Hashtbl.mem fdefs r
         && header_live_f land fp_bit r <> 0
         && body_def_reaches_header (Reachdefs.fp_code r)
         && (not (fp_preserved r))
         && not (fp_accumulator r)
       then
         note carried
           (Fmt.str "register %s carries a value across iterations"
              (Reg.fp_name r)))
    Reg.all_fp;
  (* --- information boundaries --- *)
  List.iter
    (fun (ii : Cfg.insn_info) ->
       match ii.Cfg.insn with
       | Insn.Call _ ->
         note ambiguous
           (Fmt.str "call at 0x%x: callee effects unknown" ii.Cfg.addr)
       | Insn.Syscall _ ->
         note ambiguous
           (Fmt.str "system call at 0x%x inside the body" ii.Cfg.addr)
       | _ -> ())
    insns;
  (* --- memory accesses ---
     every address is already normalised to origin registers and their
     in-iteration offsets; the stride is what those origins advance per
     iteration. Same-expression accesses a cache line apart or closer
     are one array, farther are distinct objects. *)
  let classify (m : Operand.mem) base index =
    match base, index with
    | Some None, _ | _, Some None -> `Opaque
    | _ ->
      let base = Option.join base and index = Option.join index in
      let b_step = match base with
        | Some (o, _) -> net_step o
        | None -> Some 0
      and i_step = match index with
        | Some (o, _) -> net_step o
        | None -> Some 0
      in
      (match b_step, i_step with
       | Some bs, Some is_ ->
         let stride = bs + (m.Operand.scale * is_) in
         let key =
           ( Option.map fst base,
             Option.map fst index,
             m.Operand.scale )
         in
         let disp =
           m.Operand.disp
           + (match base with Some (_, c) -> c | None -> 0)
           + (match index with
              | Some (_, c) -> m.Operand.scale * c
              | None -> 0)
         in
         (match base with
          | Some ((Reg.RSP | Reg.RBP), _)
            when index = None && stride = 0 -> `Stack
          | _ -> if stride = 0 then `Invariant else `Strided (key, disp, stride))
       | _ -> `Opaque)
  in
  let strided = ref [] in
  List.iter
    (fun (addr, is_w, width, m, base, index) ->
       match classify m base index with
       | `Stack -> ()
       | `Opaque ->
         note ambiguous
           (Fmt.str "%s at 0x%x through an address that varies unpredictably"
              (if is_w then "store" else "load")
              addr)
       | `Invariant ->
         if is_w then
           note ambiguous
             (Fmt.str
                "store at 0x%x rewrites a loop-invariant address every \
                 iteration" addr)
       | `Strided (key, disp, stride) ->
         strided := (addr, is_w, width, key, disp, stride) :: !strided)
    (List.rev !accesses);
  (* cross-iteration overlap between a strided store and any access on
     the same induction expression: iterations m apart collide when
     |m*stride + d| < width *)
  let overlapping_lag stride d width =
    if stride = 0 then None
    else
      let m0 = -d / stride in
      List.find_opt
        (fun m -> m <> 0 && abs ((m * stride) + d) < width)
        [ m0 - 1; m0; m0 + 1 ]
  in
  List.iter
    (fun (wa, is_w, wwidth, wkey, wdisp, stride) ->
       if is_w then
         List.iter
           (fun (aa, _, awidth, akey, adisp, _) ->
              if akey = wkey then begin
                let d = wdisp - adisp in
                if abs d < same_array_distance then (
                  match overlapping_lag stride d (max wwidth awidth) with
                  | Some lag ->
                    note carried
                      (Fmt.str
                         "store at 0x%x overlaps the access at 0x%x %d \
                          iteration(s) away (stride %d, distance %d)"
                         wa aa (abs lag) stride d)
                  | None -> ())
                else
                  note ambiguous
                    (Fmt.str
                       "store at 0x%x and the access at 0x%x walk the same \
                        induction expression %d bytes apart: disjointness \
                        needs runtime footprints" wa aa (abs d))
              end)
           !strided)
    !strided;
  (* stores walking one array while another array is accessed: static
     disjointness of the two bases is not decidable here *)
  let write_keys =
    List.filter_map
      (fun (_, is_w, _, k, _, _) -> if is_w then Some k else None)
      !strided
  in
  List.iter
    (fun (aa, _, _, akey, _, _) ->
       if List.exists (fun k -> k <> akey) write_keys then
         note ambiguous
           (Fmt.str
              "access at 0x%x and a store walk distinct base expressions; \
               disjointness needs runtime footprints" aa))
    !strided;
  { v_carried = List.rev !carried; v_ambiguous = List.rev !ambiguous }
