(** Schedule verification: statically prove a rewrite schedule safe
    against the binary it rewrites, before the DBM ever applies it.

    The linter treats the .jrs/.jx pair the way a loader treats a
    relocation table — every cross-reference must land, every paired
    construct must close, every claim the schedule makes about machine
    state (a register is dead, two memory regions are disjoint, an
    iterator walks a known direction) must be provable from the binary
    alone. Violations are reported as findings, never fixed silently;
    {!check_and_demote} then degrades offending loops to sequential
    execution so a bad schedule can cost performance but not
    correctness. *)

open Janus_vx
open Janus_analysis
module Schedule = Janus_schedule.Schedule
module Rule = Janus_schedule.Rule

type severity = Error | Warning | Info

type finding = {
  severity : severity;
  code : string;      (** stable machine-readable class, e.g. ["dangling-address"] *)
  addr : int option;  (** trigger address, when rule-scoped *)
  lid : int option;   (** loop id, when attributable *)
  message : string;
}

val severity_name : severity -> string
val pp_finding : Format.formatter -> finding -> unit

(** The loop id a rule belongs to, when its encoding carries one
    (LOOP_UPDATE_BOUND is the one parallelisation rule that does not). *)
val rule_lid : Rule.t -> int option

(** Lint a schedule against the image it was generated for. [pool]
    shards the per-descriptor deep checks (liveness, loop forests) by
    containing function and the fission re-analysis by function;
    findings are merged in deterministic lid order, so the report is
    byte-identical with or without a pool, at any [--jobs]. *)
val lint : ?pool:Janus_pool.Pool.t -> Image.t -> Schedule.t -> finding list

(** Re-derive every analysable loop's dependence verdict with
    {!Memdep} and report disagreements with the classifier. *)
val crosscheck : Analysis.t -> finding list

val has_errors : finding list -> bool

(** Loop ids carrying at least one [Error] finding. *)
val failed_loops : finding list -> int list

(** Remove every rule belonging to the given loops (plus the
    LOOP_UPDATE_BOUND rules inside their bodies), leaving the rest of
    the schedule intact: those loops run sequentially under the DBM. *)
val demote : Image.t -> Schedule.t -> int list -> Schedule.t

(** Lint, then demote every loop with an error — or, when an error
    cannot be attributed to a loop, drop the whole rule list (a pure
    DBM run is always sequentially correct). Returns the (possibly
    reduced) schedule, the demoted loop ids and the findings. *)
val check_and_demote :
  ?pool:Janus_pool.Pool.t ->
  Image.t -> Schedule.t -> Schedule.t * int list * finding list
