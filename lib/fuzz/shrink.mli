(** Greedy structural minimisation of a failing kernel.

    Works on the typed {!Kernel.t} — never on source text — so every
    candidate is a well-formed kernel and the emitted reproducer stays
    decodable. Candidates, tried in order of how much they remove:
    drop a whole loop, replace a nest by its inner loop, drop the
    inner loop, drop the call, drop one statement, halve a trip count
    (renaming the loop's bound key in [expect_doall] so promises follow
    the loop), truncate an expression, halve the array size, and drop
    unreferenced trailing arrays/scalars/index arrays. A candidate is
    kept when it is still {!Kernel.valid} and [still_failing] holds;
    the process repeats to a fixpoint. *)

(** [minimise ~still_failing k] assumes [still_failing k = true] and
    returns a locally minimal kernel on which it still holds. The
    predicate is called O(candidates × accepted steps) times — with the
    full oracle as predicate, each call compiles and runs the kernel,
    so minimisation of a typical failure takes seconds, not minutes. *)
val minimise : still_failing:(Kernel.t -> bool) -> Kernel.t -> Kernel.t
