type op = Add | Sub | Mul
type idx = At of int | Out of int | Via of int | Fix of int | Sv of int

type atom = Num of int | Scl of int | Elt of int * idx
type expr = { e0 : atom; rest : (op * atom) list }

type stmt =
  | Set of { arr : int; ix : idx; e : expr }
  | Red of { s : int; op : op; e : expr }
  | Bump of { s : int; c : int }
  | Brk of { arr : int; ix : idx; limit : int }

type loop = { trip : int; lo : int; body : stmt list; inner : loop option }
type iarr = { istep : int; ioff : int; imod : int }
type call = { cdst : int; csrc : int; coff : int; cadd : int; ctrip : int }

type t = {
  asize : int;
  arrays : int;
  scalars : int;
  iarrays : iarr list;
  loops : loop list;
  call : call option;
  expect_doall : int list;
  expect_fission : int list;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun m -> raise (Invalid m)) fmt

(* ------------------------------------------------------------------ *)
(* Structure helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec loop_keys (l : loop) =
  (l.lo + l.trip)
  :: (match l.inner with Some i -> loop_keys i | None -> [])

let bound_keys (k : t) = List.concat_map loop_keys k.loops

let rec depth_of (l : loop) =
  1 + (match l.inner with Some i -> depth_of i | None -> 0)

let loop_count (k : t) =
  List.fold_left (fun acc l -> acc + depth_of l) 0 k.loops
  + (match k.call with Some _ -> 1 | None -> 0)

let rec loop_stmts (l : loop) =
  List.length l.body
  + (match l.inner with Some i -> loop_stmts i | None -> 0)

let stmt_count (k : t) = List.fold_left (fun acc l -> acc + loop_stmts l) 0 k.loops

let rec loop_work (l : loop) =
  l.trip
  * (List.length l.body + 1
     + (match l.inner with Some i -> loop_work i | None -> 0))

let work (k : t) =
  List.fold_left (fun acc l -> acc + loop_work l) 0 k.loops
  + (match k.call with Some c -> c.ctrip | None -> 0)
  (* init + checksum sweeps the emitted program also runs *)
  + k.asize * (2 * k.arrays + List.length k.iarrays)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let max_work = 60_000

let validate (k : t) =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  if k.asize < 8 || k.asize > 512 then fail "asize %d out of [8,512]" k.asize;
  if k.arrays < 1 || k.arrays > 6 then fail "arrays %d out of [1,6]" k.arrays;
  if k.scalars < 0 || k.scalars > 6 then fail "scalars %d out of [0,6]" k.scalars;
  if List.length k.iarrays > 4 then fail "too many index arrays";
  List.iter
    (fun (b : iarr) ->
      if b.imod < 1 || b.imod > k.asize then fail "imod %d out of [1,asize]" b.imod;
      if b.istep < 0 || b.istep > 64 then fail "istep %d out of [0,64]" b.istep;
      if b.ioff < 0 || b.ioff > 64 then fail "ioff %d out of [0,64]" b.ioff)
    k.iarrays;
  if k.loops = [] && k.call = None then fail "kernel has no loops";
  if List.length k.loops > 6 then fail "too many loops";
  let narrs = k.arrays and nscal = k.scalars and nb = List.length k.iarrays in
  let check_idx = function
    | At c | Out c ->
      if c < -8 || c > 8 then fail "index offset %d out of [-8,8]" c
    | Via b -> if b < 0 || b >= nb then fail "index array b%d undefined" b
    | Fix c -> if c < 0 || c >= k.asize then fail "fixed index %d out of range" c
    | Sv s -> if s < 0 || s >= nscal then fail "scalar s%d undefined" s
  in
  let check_atom = function
    | Num n -> if abs n > 10_000 then fail "literal %d too large" n
    | Scl s -> if s < 0 || s >= nscal then fail "scalar s%d undefined" s
    | Elt (a, ix) ->
      if a < 0 || a >= narrs then fail "array a%d undefined" a;
      check_idx ix
  in
  let check_expr e =
    check_atom e.e0;
    if List.length e.rest > 4 then fail "expression too long";
    List.iter (fun (_, a) -> check_atom a) e.rest
  in
  let check_stmt = function
    | Set { arr; ix; e } ->
      if arr < 0 || arr >= narrs then fail "array a%d undefined" arr;
      check_idx ix; check_expr e
    | Red { s; e; _ } ->
      if s < 0 || s >= nscal then fail "scalar s%d undefined" s;
      check_expr e
    | Bump { s; c } ->
      if s < 0 || s >= nscal then fail "scalar s%d undefined" s;
      if c = 0 || abs c > 8 then fail "bump step %d out of range" c
    | Brk { arr; ix; limit } ->
      if arr < 0 || arr >= narrs then fail "array a%d undefined" arr;
      check_idx ix;
      if abs limit > 10_000 then fail "break limit %d too large" limit
  in
  let rec check_loop depth (l : loop) =
    if depth > 2 then fail "loop nest deeper than 2";
    if l.trip < 1 || l.trip > 128 then fail "trip %d out of [1,128]" l.trip;
    if l.lo < 0 || l.lo > 16 then fail "lo %d out of [0,16]" l.lo;
    if List.length l.body > 8 then fail "loop body too long";
    List.iter check_stmt l.body;
    match l.inner with Some i -> check_loop (depth + 1) i | None -> ()
  in
  List.iter (check_loop 1) k.loops;
  (* bound keys identify loops in analyser reports: they must be unique
     and distinct from the init/checksum sweeps' bound (= asize) *)
  let keys = bound_keys k in
  let sorted = List.sort_uniq compare keys in
  if List.length sorted <> List.length keys then fail "duplicate bound keys";
  if List.mem k.asize keys then fail "bound key collides with asize";
  List.iter
    (fun e -> if not (List.mem e keys) then fail "expect_doall key %d unknown" e)
    k.expect_doall;
  List.iter
    (fun e ->
      if not (List.mem e keys) then fail "expect_fission key %d unknown" e;
      if List.mem e k.expect_doall then
        fail "key %d both expect_doall and expect_fission" e)
    k.expect_fission;
  (match k.call with
  | None -> ()
  | Some c ->
    if c.cdst < 0 || c.cdst >= narrs then fail "call dst a%d undefined" c.cdst;
    if c.csrc < 0 || c.csrc >= narrs then fail "call src a%d undefined" c.csrc;
    if c.ctrip < 1 then fail "call trip %d < 1" c.ctrip;
    if c.coff < 0 then fail "call offset %d < 0" c.coff;
    if c.ctrip + c.coff > k.asize then fail "call reads past array end";
    if abs c.cadd > 10_000 then fail "call addend too large");
  if work k > max_work then fail "work %d exceeds budget %d" (work k) max_work;
  !err

(* ------------------------------------------------------------------ *)
(* Reference interpreter with dependence footprints                    *)
(* ------------------------------------------------------------------ *)

type verdict = { v_key : int option; v_dependent : bool; v_why : string }
type truth = { t_output : string; t_verdicts : verdict list }

(* Scalars bumped anywhere in a loop's subtree: an [Sv s] subscript is
   iteration-varying for that loop exactly when [s] is one of these. *)
let rec bumped_in (l : loop) =
  let own =
    List.filter_map (function Bump { s; _ } -> Some s | _ -> None) l.body
  in
  own @ (match l.inner with Some i -> bumped_in i | None -> [])

(* Syntactic scalar-dependence check for one loop subtree: a reduction
   target that is also read, bumped, or reduced with mixed operators is
   a genuine cross-iteration scalar dependence (not a recognisable
   reduction idiom). *)
let scalar_dep (l : loop) =
  let reds = Hashtbl.create 4 in   (* scalar -> op list *)
  let reads = Hashtbl.create 4 in
  let bumps = Hashtbl.create 4 in
  let note_idx = function Sv s -> Hashtbl.replace reads s () | _ -> () in
  let note_atom = function
    | Scl s -> Hashtbl.replace reads s ()
    | Elt (_, ix) -> note_idx ix
    | Num _ -> ()
  in
  let note_expr e = note_atom e.e0; List.iter (fun (_, a) -> note_atom a) e.rest in
  let rec walk (l : loop) =
    List.iter
      (function
        | Set { ix; e; _ } -> note_idx ix; note_expr e
        | Red { s; op; e } ->
          let prev = try Hashtbl.find reds s with Not_found -> [] in
          Hashtbl.replace reds s (op :: prev);
          note_expr e
        | Bump { s; _ } -> Hashtbl.replace bumps s ()
        | Brk { ix; _ } -> note_idx ix)
      l.body;
    match l.inner with Some i -> walk i | None -> ()
  in
  walk l;
  Hashtbl.fold
    (fun s ops acc ->
      match acc with
      | Some _ -> acc
      | None ->
        let mixed = List.sort_uniq compare ops |> List.length > 1 in
        if Hashtbl.mem reads s then Some (Printf.sprintf "s%d reduced and read" s)
        else if Hashtbl.mem bumps s then Some (Printf.sprintf "s%d reduced and bumped" s)
        else if mixed then Some (Printf.sprintf "s%d mixed reduction ops" s)
        else None)
    reds None

let has_break (l : loop) =
  List.exists (function Brk _ -> true | _ -> false) l.body

type cell = {
  mutable wrote : bool;
  mutable it_min : int;
  mutable it_max : int;
  mutable vary : bool;
}

type frame = {
  f_id : int;
  f_bumped : (int, unit) Hashtbl.t;
  mutable f_iter : int;
  f_cells : (int * int, cell) Hashtbl.t;
}

exception Break_loop

let ground_truth (k : t) =
  (match validate k with Some m -> raise (Invalid m) | None -> ());
  let a =
    Array.init k.arrays (fun m ->
        Array.init k.asize (fun i ->
            Int64.of_int ((i * (3 + (2 * m)) + (m + 1)) mod 97)))
  in
  let b =
    Array.of_list
      (List.map
         (fun (ia : iarr) ->
           Array.init k.asize (fun i -> (i * ia.istep + ia.ioff) mod ia.imod))
         k.iarrays)
  in
  let s = Array.init k.scalars (fun i -> Int64.of_int (i + 1)) in
  let nloops = loop_count k in
  let dep : string option array = Array.make (max 1 nloops) None in
  let keys : int option array = Array.make (max 1 nloops) None in
  let apply op x y =
    match op with
    | Add -> Int64.add x y
    | Sub -> Int64.sub x y
    | Mul -> Int64.mul x y
  in
  let cell_of ~iv ~ov ix =
    let c =
      match ix with
      | At c -> iv + c
      | Out c -> ov + c
      | Via bi ->
        if iv < 0 || iv >= k.asize then invalid "b%d[%d] out of bounds" bi iv;
        b.(bi).(iv)
      | Fix c -> c
      | Sv sc -> Int64.to_int s.(sc)
    in
    if c < 0 || c >= k.asize then invalid "index %d out of [0,%d)" c k.asize;
    c
  in
  (* [frames] is innermost-first; record the access into every open
     footprint with that frame's view of whether the address varies. *)
  let record frames ~write arr cell ix =
    List.iteri
      (fun pos f ->
        let vary =
          match ix with
          | At _ | Via _ -> pos = 0
          | Out _ -> pos = List.length frames - 1
          | Fix _ -> false
          | Sv sc -> Hashtbl.mem f.f_bumped sc
        in
        let key = (arr, cell) in
        match Hashtbl.find_opt f.f_cells key with
        | None ->
          Hashtbl.add f.f_cells key
            { wrote = write; it_min = f.f_iter; it_max = f.f_iter; vary }
        | Some c ->
          c.wrote <- c.wrote || write;
          c.it_min <- min c.it_min f.f_iter;
          c.it_max <- max c.it_max f.f_iter;
          c.vary <- c.vary || vary)
      frames
  in
  let eval_atom frames ~iv ~ov = function
    | Num n -> Int64.of_int n
    | Scl sc -> s.(sc)
    | Elt (arr, ix) ->
      let c = cell_of ~iv ~ov ix in
      record frames ~write:false arr c ix;
      a.(arr).(c)
  in
  let eval_expr frames ~iv ~ov e =
    List.fold_left
      (fun acc (op, at) -> apply op acc (eval_atom frames ~iv ~ov at))
      (eval_atom frames ~iv ~ov e.e0)
      e.rest
  in
  let exec_stmt frames ~iv ~ov = function
    | Set { arr; ix; e } ->
      let v = eval_expr frames ~iv ~ov e in
      let c = cell_of ~iv ~ov ix in
      record frames ~write:true arr c ix;
      a.(arr).(c) <- v
    | Red { s = sc; op; e } -> s.(sc) <- apply op s.(sc) (eval_expr frames ~iv ~ov e)
    | Bump { s = sc; c } -> s.(sc) <- Int64.add s.(sc) (Int64.of_int c)
    | Brk { arr; ix; limit } ->
      let c = cell_of ~iv ~ov ix in
      record frames ~write:false arr c ix;
      if Int64.compare a.(arr).(c) (Int64.of_int limit) > 0 then raise Break_loop
  in
  (* close one loop instance: a write to a cell touched in more than one
     iteration through a varying subscript is an assertable conflict *)
  let close_frame f =
    if dep.(f.f_id) = None then
      Hashtbl.iter
        (fun (arr, c) cl ->
          if cl.wrote && cl.it_min <> cl.it_max && cl.vary && dep.(f.f_id) = None
          then dep.(f.f_id) <- Some (Printf.sprintf "a%d[%d] carried across iterations" arr c))
        f.f_cells
  in
  (* static pass: ids, bound keys and syntactic verdicts exist even for
     loops the dynamic run never reaches (break on iteration 0) *)
  let rec static_pass id (l : loop) =
    keys.(id) <- Some (l.lo + l.trip);
    (match scalar_dep l with Some w -> dep.(id) <- Some w | None -> ());
    if has_break l && dep.(id) = None then
      dep.(id) <- Some "data-dependent early exit";
    match l.inner with Some i -> static_pass (id + 1) i | None -> id + 1
  in
  let call_id = List.fold_left static_pass 0 k.loops in
  let total_ids = call_id + (match k.call with Some _ -> 1 | None -> 0) in
  let rec run_loop outer_frames ~ov ~id (l : loop) =
    let bt = Hashtbl.create 4 in
    List.iter (fun sc -> Hashtbl.replace bt sc ()) (bumped_in l);
    let f = { f_id = id; f_bumped = bt; f_iter = 0; f_cells = Hashtbl.create 32 } in
    let frames = f :: outer_frames in
    (try
       for iv = l.lo to l.lo + l.trip - 1 do
         f.f_iter <- iv - l.lo;
         let ov = if outer_frames = [] then iv else ov in
         List.iter (exec_stmt frames ~iv ~ov) l.body;
         match l.inner with
         | Some i -> run_loop frames ~ov ~id:(id + 1) i
         | None -> ()
       done
     with Break_loop -> ());
    close_frame f
  in
  ignore
    (List.fold_left
       (fun id l -> run_loop [] ~ov:0 ~id l; id + depth_of l)
       0 k.loops);
  (* the may-alias call: kfn(&a<cdst>, &a<csrc>, ctrip) *)
  (match k.call with
  | None -> ()
  | Some c ->
    keys.(call_id) <- None;
    if c.cdst = c.csrc && c.coff <> 0 then
      dep.(call_id) <- Some "aliasing call parameters";
    let p = a.(c.cdst) and q = a.(c.csrc) in
    for i = 0 to c.ctrip - 1 do
      p.(i) <- Int64.add q.(i + c.coff) (Int64.of_int c.cadd)
    done);
  (* observable output: per-array weighted checksums, then scalars *)
  let buf = Buffer.create 256 in
  let emit v = Buffer.add_string buf (Printf.sprintf "%Ld\n" v) in
  Array.iter
    (fun arr ->
      let acc = ref 0L in
      Array.iteri
        (fun i v -> acc := Int64.add !acc (Int64.mul v (Int64.of_int (i + 1))))
        arr;
      emit !acc)
    a;
  Array.iter emit s;
  let verdicts =
    List.init total_ids (fun i ->
        {
          v_key = keys.(i);
          v_dependent = dep.(i) <> None;
          v_why = (match dep.(i) with Some w -> w | None -> "independent");
        })
  in
  { t_output = Buffer.contents buf; t_verdicts = verdicts }

let valid (k : t) =
  match validate k with
  | Some _ -> false
  | None -> ( try ignore (ground_truth k); true with Invalid _ -> false)

(* ------------------------------------------------------------------ *)
(* Codec: a small s-expression surface form for the corpus             *)
(* ------------------------------------------------------------------ *)

type sx = A of string | L of sx list

let tokenize src =
  let toks = ref [] in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    (match src.[!i] with
    | '(' -> toks := "(" :: !toks; incr i
    | ')' -> toks := ")" :: !toks; incr i
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | ';' -> while !i < n && src.[!i] <> '\n' do incr i done
    | _ ->
      let j = ref !i in
      let stop c = c = '(' || c = ')' || c = ' ' || c = '\t' || c = '\n'
                   || c = '\r' || c = ';' in
      while !j < n && not (stop src.[!j]) do incr j done;
      toks := String.sub src !i (!j - !i) :: !toks;
      i := !j);
  done;
  List.rev !toks

let parse_sx src =
  let toks = ref (tokenize src) in
  let next () =
    match !toks with
    | [] -> invalid "unexpected end of input"
    | t :: rest -> toks := rest; t
  in
  let rec sexp () =
    match next () with
    | "(" -> L (items [])
    | ")" -> invalid "unexpected ')'"
    | t -> A t
  and items acc =
    match !toks with
    | [] -> invalid "unclosed '('"
    | ")" :: rest -> toks := rest; List.rev acc
    | _ -> items (sexp () :: acc)
  in
  let v = sexp () in
  if !toks <> [] then invalid "trailing tokens";
  v

let int_of = function
  | A t -> (try int_of_string t with _ -> invalid "expected integer, got %S" t)
  | L _ -> invalid "expected integer, got a list"

let op_str = function Add -> "add" | Sub -> "sub" | Mul -> "mul"

let op_of = function
  | A "add" -> Add
  | A "sub" -> Sub
  | A "mul" -> Mul
  | A t -> invalid "unknown operator %S" t
  | L _ -> invalid "expected operator"

let idx_sx = function
  | At c -> L [ A "at"; A (string_of_int c) ]
  | Out c -> L [ A "out"; A (string_of_int c) ]
  | Via b -> L [ A "via"; A (string_of_int b) ]
  | Fix c -> L [ A "fix"; A (string_of_int c) ]
  | Sv s -> L [ A "sv"; A (string_of_int s) ]

let idx_of = function
  | L [ A "at"; c ] -> At (int_of c)
  | L [ A "out"; c ] -> Out (int_of c)
  | L [ A "via"; c ] -> Via (int_of c)
  | L [ A "fix"; c ] -> Fix (int_of c)
  | L [ A "sv"; c ] -> Sv (int_of c)
  | _ -> invalid "malformed index"

let atom_sx = function
  | Num n -> L [ A "num"; A (string_of_int n) ]
  | Scl s -> L [ A "scl"; A (string_of_int s) ]
  | Elt (a, ix) -> L [ A "elt"; A (string_of_int a); idx_sx ix ]

let atom_of = function
  | L [ A "num"; n ] -> Num (int_of n)
  | L [ A "scl"; s ] -> Scl (int_of s)
  | L [ A "elt"; a; ix ] -> Elt (int_of a, idx_of ix)
  | _ -> invalid "malformed atom"

let expr_sx e =
  L (A "e" :: atom_sx e.e0
     :: List.concat_map (fun (op, at) -> [ A (op_str op); atom_sx at ]) e.rest)

let expr_of = function
  | L (A "e" :: e0 :: rest) ->
    let rec pairs = function
      | [] -> []
      | op :: at :: tl -> (op_of op, atom_of at) :: pairs tl
      | _ -> invalid "malformed expression tail"
    in
    { e0 = atom_of e0; rest = pairs rest }
  | _ -> invalid "malformed expression"

let stmt_sx = function
  | Set { arr; ix; e } -> L [ A "set"; A (string_of_int arr); idx_sx ix; expr_sx e ]
  | Red { s; op; e } -> L [ A "red"; A (string_of_int s); A (op_str op); expr_sx e ]
  | Bump { s; c } -> L [ A "bump"; A (string_of_int s); A (string_of_int c) ]
  | Brk { arr; ix; limit } ->
    L [ A "brk"; A (string_of_int arr); idx_sx ix; A (string_of_int limit) ]

let stmt_of = function
  | L [ A "set"; arr; ix; e ] ->
    Set { arr = int_of arr; ix = idx_of ix; e = expr_of e }
  | L [ A "red"; s; op; e ] -> Red { s = int_of s; op = op_of op; e = expr_of e }
  | L [ A "bump"; s; c ] -> Bump { s = int_of s; c = int_of c }
  | L [ A "brk"; arr; ix; limit ] ->
    Brk { arr = int_of arr; ix = idx_of ix; limit = int_of limit }
  | _ -> invalid "malformed statement"

let rec loop_sx tag (l : loop) =
  L (A tag :: A (string_of_int l.trip) :: A (string_of_int l.lo)
     :: (List.map stmt_sx l.body
         @ match l.inner with Some i -> [ loop_sx "inner" i ] | None -> []))

let rec loop_of tag = function
  | L (A t :: trip :: lo :: rest) when String.equal t tag ->
    let rec split acc = function
      | [] -> (List.rev acc, None)
      | [ (L (A "inner" :: _) as i) ] -> (List.rev acc, Some (loop_of "inner" i))
      | s :: tl -> split (stmt_of s :: acc) tl
    in
    let body, inner = split [] rest in
    { trip = int_of trip; lo = int_of lo; body; inner }
  | _ -> invalid "malformed loop (expected %s)" tag

let to_string (k : t) =
  let b = Buffer.create 512 in
  let rec put = function
    | A t -> Buffer.add_string b t
    | L items ->
      Buffer.add_char b '(';
      List.iteri
        (fun i s -> if i > 0 then Buffer.add_char b ' '; put s)
        items;
      Buffer.add_char b ')'
  in
  let field name vs = L (A name :: vs) in
  let ints = List.map (fun n -> A (string_of_int n)) in
  put
    (L
       ([ A "kernel";
          field "asize" (ints [ k.asize ]);
          field "arrays" (ints [ k.arrays ]);
          field "scalars" (ints [ k.scalars ]) ]
        @ List.map
            (fun (ia : iarr) -> field "iarr" (ints [ ia.istep; ia.ioff; ia.imod ]))
            k.iarrays
        @ List.map (loop_sx "loop") k.loops
        @ (match k.call with
          | Some c -> [ field "call" (ints [ c.cdst; c.csrc; c.coff; c.cadd; c.ctrip ]) ]
          | None -> [])
        @ (match k.expect_doall with [] -> [] | e -> [ field "expect" (ints e) ])
        @ match k.expect_fission with
          | [] -> []
          | e -> [ field "expect-fission" (ints e) ]));
  Buffer.add_char b '\n';
  Buffer.contents b

let of_string src =
  match parse_sx src with
  | L (A "kernel" :: fields) ->
    let k =
      ref
        { asize = 0; arrays = 0; scalars = 0; iarrays = []; loops = [];
          call = None; expect_doall = []; expect_fission = [] }
    in
    List.iter
      (fun f ->
        match f with
        | L [ A "asize"; n ] -> k := { !k with asize = int_of n }
        | L [ A "arrays"; n ] -> k := { !k with arrays = int_of n }
        | L [ A "scalars"; n ] -> k := { !k with scalars = int_of n }
        | L [ A "iarr"; s; o; m ] ->
          k := { !k with iarrays =
                   !k.iarrays @ [ { istep = int_of s; ioff = int_of o; imod = int_of m } ] }
        | L (A "loop" :: _) -> k := { !k with loops = !k.loops @ [ loop_of "loop" f ] }
        | L [ A "call"; d; s; o; a; t ] ->
          k := { !k with call =
                   Some { cdst = int_of d; csrc = int_of s; coff = int_of o;
                          cadd = int_of a; ctrip = int_of t } }
        | L (A "expect" :: es) -> k := { !k with expect_doall = List.map int_of es }
        | L (A "expect-fission" :: es) ->
          k := { !k with expect_fission = List.map int_of es }
        | _ -> invalid "unknown kernel field")
      fields;
    !k
  | _ -> invalid "expected (kernel ...)"

let pp fmt k = Format.pp_print_string fmt (to_string k)
