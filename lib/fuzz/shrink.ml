open Kernel

(* replace the [i]th element via [f]; id on out-of-range *)
let mapi_at i f l = List.mapi (fun j x -> if i = j then f x else x) l

let drop_at i l = List.filteri (fun j _ -> j <> i) l

(* retarget a promise when a loop's bound key moves *)
let rekey ~old_key ~new_key expect =
  List.map (fun k -> if k = old_key then new_key else k) expect

(* highest array/scalar/iarray index actually referenced *)
let refs (k : t) =
  let amax = ref (-1) and smax = ref (-1) and bmax = ref (-1) in
  let see_idx = function
    | Via b -> bmax := max !bmax b
    | Sv s -> smax := max !smax s
    | At _ | Out _ | Fix _ -> ()
  in
  let see_atom = function
    | Num _ -> ()
    | Scl s -> smax := max !smax s
    | Elt (a, ix) -> amax := max !amax a; see_idx ix
  in
  let see_expr e = see_atom e.e0; List.iter (fun (_, a) -> see_atom a) e.rest in
  let see_stmt = function
    | Set { arr; ix; e } -> amax := max !amax arr; see_idx ix; see_expr e
    | Red { s; e; _ } -> smax := max !smax s; see_expr e
    | Bump { s; _ } -> smax := max !smax s
    | Brk { arr; ix; _ } -> amax := max !amax arr; see_idx ix
  in
  let rec see_loop l =
    List.iter see_stmt l.body;
    match l.inner with Some i -> see_loop i | None -> ()
  in
  List.iter see_loop k.loops;
  (match k.call with
  | Some c -> amax := max !amax (max c.cdst c.csrc)
  | None -> ());
  (!amax, !smax, !bmax)

(* all one-step reductions of [k], biggest cuts first *)
let candidates (k : t) =
  let n = List.length k.loops in
  let whole_loops =
    List.concat
      (List.init n (fun i ->
           let l = List.nth k.loops i in
           [ { k with loops = drop_at i k.loops;
               expect_doall =
                 List.filter (fun key -> key <> l.lo + l.trip) k.expect_doall;
               expect_fission =
                 List.filter (fun key -> key <> l.lo + l.trip) k.expect_fission } ]
           @ (match l.inner with
             | Some inner ->
               [ { k with loops = mapi_at i (fun _ -> inner) k.loops };
                 { k with loops = mapi_at i (fun l -> { l with inner = None }) k.loops } ]
             | None -> [])))
  in
  let call = match k.call with Some _ -> [ { k with call = None } ] | None -> [] in
  let stmts =
    (* dropping a statement can turn a promised-fissionable body into a
       plain DOALL one, so the fission label is void for that loop *)
    let unfission (l : loop) k =
      { k with
        expect_fission =
          List.filter (fun key -> key <> l.lo + l.trip) k.expect_fission }
    in
    List.concat
      (List.init n (fun i ->
           let l = List.nth k.loops i in
           List.init (List.length l.body) (fun j ->
               unfission l
                 { k with loops = mapi_at i (fun l -> { l with body = drop_at j l.body }) k.loops })
           @
           match l.inner with
           | None -> []
           | Some inner ->
             List.init (List.length inner.body) (fun j ->
                 unfission inner
                   { k with
                     loops =
                       mapi_at i
                         (fun l ->
                           { l with
                             inner = Some { inner with body = drop_at j inner.body } })
                       k.loops })))
  in
  let trips =
    List.concat
      (List.init n (fun i ->
           let l = List.nth k.loops i in
           let halve (l : loop) =
             { l with trip = max 1 (l.trip / 2) }
           in
           (if l.trip > 1 then
              [ { k with loops = mapi_at i halve k.loops;
                  expect_doall =
                    rekey ~old_key:(l.lo + l.trip)
                      ~new_key:(l.lo + max 1 (l.trip / 2))
                      k.expect_doall;
                  expect_fission =
                    rekey ~old_key:(l.lo + l.trip)
                      ~new_key:(l.lo + max 1 (l.trip / 2))
                      k.expect_fission } ]
            else [])
           @
           match l.inner with
           | Some inner when inner.trip > 1 ->
             [ { k with
                 loops = mapi_at i (fun l -> { l with inner = Some (halve inner) }) k.loops;
                 expect_doall =
                   rekey ~old_key:(inner.lo + inner.trip)
                     ~new_key:(inner.lo + max 1 (inner.trip / 2))
                     k.expect_doall;
                 expect_fission =
                   rekey ~old_key:(inner.lo + inner.trip)
                     ~new_key:(inner.lo + max 1 (inner.trip / 2))
                     k.expect_fission } ]
           | _ -> []))
  in
  let exprs =
    let simpler e =
      if e.rest <> [] then [ { e with rest = [] } ]
      else match e.e0 with Num _ -> [] | _ -> [ { e0 = Num 1; rest = [] } ]
    in
    let stmt_vers = function
      | Set s -> List.map (fun e -> Set { s with e }) (simpler s.e)
      | Red r -> List.map (fun e -> Red { r with e }) (simpler r.e)
      | Bump _ | Brk _ -> []
    in
    let body_vers body =
      List.concat
        (List.mapi
           (fun j st -> List.map (fun st' -> mapi_at j (fun _ -> st') body) (stmt_vers st))
           body)
    in
    List.concat
      (List.init n (fun i ->
           let l = List.nth k.loops i in
           List.map
             (fun body -> { k with loops = mapi_at i (fun l -> { l with body }) k.loops })
             (body_vers l.body)
           @
           match l.inner with
           | None -> []
           | Some inner ->
             List.map
               (fun body ->
                 { k with
                   loops =
                     mapi_at i (fun l -> { l with inner = Some { inner with body } }) k.loops })
               (body_vers inner.body)))
  in
  let sizes =
    (if k.asize > 8 then [ { k with asize = max 8 (k.asize / 2) } ] else [])
    @
    let amax, smax, bmax = refs k in
    (if k.arrays > max 1 (amax + 1) then [ { k with arrays = max 1 (amax + 1) } ] else [])
    @ (if k.scalars > smax + 1 then [ { k with scalars = smax + 1 } ] else [])
    @
    if List.length k.iarrays > bmax + 1 then
      [ { k with iarrays = List.filteri (fun j _ -> j <= bmax) k.iarrays } ]
    else []
  in
  whole_loops @ call @ stmts @ trips @ exprs @ sizes

let minimise ~still_failing (k : t) =
  let budget = ref 500 in
  let rec fixpoint k =
    let step =
      List.find_opt
        (fun c ->
          decr budget;
          !budget >= 0 && valid c && still_failing c)
        (candidates k)
    in
    match step with
    | Some c when !budget >= 0 -> fixpoint c
    | _ -> k
  in
  fixpoint k
