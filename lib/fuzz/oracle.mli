(** The full-stack differential oracle: one kernel, every execution
    configuration, every invariant the harness knows how to assert.

    For a valid kernel the oracle checks, in order:

    - {b interp-vs-native}: the reference interpreter's expected output
      ({!Kernel.truth.t_output}) is exactly what native execution of the
      emitted program prints — the emitter and interpreter validate each
      other, so a bug in either is caught before it can poison the
      differential baseline;
    - {b differential state}: DBM-sequential, parallel at each requested
      thread count, and the adaptive-governor run all agree with native
      on output, exit code and final memory digest
      ({!Janus_core.Janus.result.mem_digest});
    - {b classification soundness}: no loop the interpreter proved
      cross-iteration dependent (on an iteration-varying address) is
      classified [Static_doall], and every {!Kernel.t.expect_doall}
      promise is met;
    - {b schedule verification}: every [Error]-severity finding from
      {!Janus_verify.Verify.check_and_demote} corresponds to a demoted
      loop (the schedule that actually runs is clean);
    - {b cycle model}: component cycles (translate + check +
      init/finish + parallel) never exceed the run's total, and no run
      aborts on fuel;
    - {b determinism}: running the parallel configuration twice on one
      prepared pipeline (cold store, then warm) is byte-identical in
      output, cycles and memory digest. *)

type failure = {
  f_check : string;   (** stable check name, e.g. ["misclassified"] *)
  f_detail : string;
}

type outcome =
  | Pass
  | Skip of string
      (** kernel rejected before checking (invalid structure or an
          out-of-bounds access in the interpreter) — not a violation *)
  | Fail of failure list

val default_threads : int list
(** [\[1; 2; 4; 8\]] *)

(** Run every check. [threads] defaults to {!default_threads}. *)
val check : ?threads:int list -> Kernel.t -> outcome

val failures : outcome -> failure list
val pp_failure : Format.formatter -> failure -> unit

(** A kernel whose ground truth is cross-iteration dependent but whose
    [expect_doall] deliberately claims otherwise: {!check} must [Fail]
    on it. The harness's own self-test — an oracle that passes this
    kernel has lost the ability to catch real classifier bugs. *)
val mislabelled : Kernel.t
