(** Random kernel generation, organised as {e shape families} — one per
    loop idiom the Janus analyser has to classify correctly: plain
    DOALL stores, reductions, cross-iteration flow/anti/output
    dependences, loop-invariant cells, secondary-induction indexing,
    indirect [a\[b\[i\]\]] accesses, data-dependent early exits,
    two-deep nests, may-alias calls, and mixed chain-plus-stream bodies
    (the loop-fission idiom).

    The [doall] family additionally {e promises} its loops
    ([Kernel.expect_doall]) when the kernel has no may-alias call, so
    the oracle exercises the promise-broken direction as well as the
    misclassification direction; the [mixed] family promises its loops
    fissionable ([Kernel.expect_fission]) under the same condition.
    Generated kernels are occasionally invalid (index fell out of
    bounds after composition); {!sample} retries until {!Kernel.valid}
    holds. *)

(** May produce invalid kernels; callers filter with {!Kernel.valid}
    (the QCheck2 properties use [assume]). *)
val kernel : Kernel.t QCheck2.Gen.t

(** Like {!kernel} but heavily weighted towards the mixed
    chain-plus-stream family, so most kernels carry an
    [expect_fission] label — the fission extension's fuzzing mode. *)
val kernel_mixed : Kernel.t QCheck2.Gen.t

(** Draw from {!kernel} (or {!kernel_mixed} when [mixed]) until valid
    (bounded retries).
    @raise Failure if no valid kernel appears within the retry budget
    (a generator bug, not bad luck — the families are tuned so most
    draws are valid). *)
val sample : ?mixed:bool -> Random.State.t -> Kernel.t
