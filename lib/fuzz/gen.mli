(** Random kernel generation, organised as {e shape families} — one per
    loop idiom the Janus analyser has to classify correctly: plain
    DOALL stores, reductions, cross-iteration flow/anti/output
    dependences, loop-invariant cells, secondary-induction indexing,
    indirect [a\[b\[i\]\]] accesses, data-dependent early exits,
    two-deep nests and may-alias calls.

    The [doall] family additionally {e promises} its loops
    ([Kernel.expect_doall]) when the kernel has no may-alias call, so
    the oracle exercises the promise-broken direction as well as the
    misclassification direction. Generated kernels are occasionally
    invalid (index fell out of bounds after composition); {!sample}
    retries until {!Kernel.valid} holds. *)

(** May produce invalid kernels; callers filter with {!Kernel.valid}
    (the QCheck2 properties use [assume]). *)
val kernel : Kernel.t QCheck2.Gen.t

(** Draw from {!kernel} until valid (bounded retries).
    @raise Failure if no valid kernel appears within the retry budget
    (a generator bug, not bad luck — the families are tuned so most
    draws are valid). *)
val sample : Random.State.t -> Kernel.t
