open Kernel

let buf_add = Buffer.add_string

(* "i + 3" / "i - 3" / "i" *)
let off var c =
  if c = 0 then var
  else if c > 0 then Printf.sprintf "%s + %d" var c
  else Printf.sprintf "%s - %d" var (-c)

let num n = if n >= 0 then string_of_int n else Printf.sprintf "(0 - %d)" (-n)

(* [iv] is the innermost induction variable in scope ("i" or "j"),
   [ov] the outermost ("i"). *)
let idx ~iv ~ov = function
  | At c -> off iv c
  | Out c -> off ov c
  | Via b -> Printf.sprintf "b%d[%s]" b iv
  | Fix c -> string_of_int c
  | Sv s -> Printf.sprintf "s%d" s

let atom ~iv ~ov = function
  | Num n -> num n
  | Scl s -> Printf.sprintf "s%d" s
  | Elt (a, ix) -> Printf.sprintf "a%d[%s]" a (idx ~iv ~ov ix)

let op_str = function Add -> "+" | Sub -> "-" | Mul -> "*"

(* fully parenthesised left fold: ((a0 op a1) op a2) *)
let expr ~iv ~ov (e : expr) =
  List.fold_left
    (fun acc (o, at) ->
      Printf.sprintf "(%s %s %s)" acc (op_str o) (atom ~iv ~ov at))
    (atom ~iv ~ov e.e0)
    e.rest

let stmt ~iv ~ov ~ind b st =
  let line fmt = Printf.ksprintf (fun s -> buf_add b (ind ^ s ^ "\n")) fmt in
  match st with
  | Set { arr; ix; e } ->
    line "a%d[%s] = %s;" arr (idx ~iv ~ov ix) (expr ~iv ~ov e)
  | Red { s; op; e } ->
    line "s%d = s%d %s %s;" s s (op_str op) (expr ~iv ~ov e)
  | Bump { s; c } ->
    if c >= 0 then line "s%d = s%d + %d;" s s c
    else line "s%d = s%d - %d;" s s (-c)
  | Brk { arr; ix; limit } ->
    line "if (a%d[%s] > %s) { break; }" arr (idx ~iv ~ov ix) (num limit)

let source (k : t) =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> buf_add b (s ^ "\n")) fmt in
  (* globals *)
  for m = 0 to k.arrays - 1 do
    line "int a%d[%d];" m k.asize
  done;
  List.iteri (fun j _ -> line "int b%d[%d];" j k.asize) k.iarrays;
  (* the may-alias callee, if any *)
  (match k.call with
  | None -> ()
  | Some c ->
    line "void kfn(int *p, int *q, int n) {";
    line "  for (int i = 0; i < n; i++) { p[i] = q[%s] + %s; }"
      (off "i" c.coff) (num c.cadd);
    line "}");
  line "int main() {";
  for j = 0 to k.scalars - 1 do
    line "  int s%d = %d;" j (j + 1)
  done;
  (* initialisation: the interpreter's exact formulas *)
  line "  for (int k = 0; k < %d; k++) {" k.asize;
  for m = 0 to k.arrays - 1 do
    line "    a%d[k] = ((k * %d) + %d) %% 97;" m (3 + (2 * m)) (m + 1)
  done;
  List.iteri
    (fun j (ia : iarr) ->
      line "    b%d[k] = ((k * %d) + %d) %% %d;" j ia.istep ia.ioff ia.imod)
    k.iarrays;
  line "  }";
  (* kernel loops: literal bounds so the compare constant is the bound key *)
  List.iter
    (fun (l : loop) ->
      line "  for (int i = %d; i < %d; i++) {" l.lo (l.lo + l.trip);
      List.iter (stmt ~iv:"i" ~ov:"i" ~ind:"    " b) l.body;
      (match l.inner with
      | None -> ()
      | Some il ->
        line "    for (int j = %d; j < %d; j++) {" il.lo (il.lo + il.trip);
        List.iter (stmt ~iv:"j" ~ov:"i" ~ind:"      " b) il.body;
        line "    }");
      line "  }")
    k.loops;
  (match k.call with
  | None -> ()
  | Some c -> line "  kfn(&a%d, &a%d, %d);" c.cdst c.csrc c.ctrip);
  (* observation block: weighted checksums, then scalars *)
  for m = 0 to k.arrays - 1 do
    line "  int c%d = 0;" m;
    line "  for (int k = 0; k < %d; k++) { c%d = c%d + (a%d[k] * (k + 1)); }"
      k.asize m m m;
    line "  print_int(c%d);" m
  done;
  for j = 0 to k.scalars - 1 do
    line "  print_int(s%d);" j
  done;
  line "  return 0;";
  line "}";
  Buffer.contents b

let image (k : t) =
  let src = source k in
  try Janus_jcc.Jcc.compile src
  with e ->
    failwith
      (Printf.sprintf "emitter produced source jcc rejects (%s):\n%s"
         (Printexc.to_string e) src)
