open Kernel
module G = QCheck2.Gen

let ( let* ) = G.bind

(* pick [n] distinct values from [0..hi-1] *)
let distinct n hi =
  let* start = G.int_range 0 (hi - 1) in
  G.pure (List.init (min n hi) (fun i -> (start + i) mod hi))

let g_op = G.oneofl [ Add; Sub; Mul ]

(* an expression reading only arrays outside [avoid] (at small [At]
   offsets), read-only scalars and literals *)
let g_safe_expr ~arrays ~scalars ~avoid =
  let readable = List.filter (fun a -> not (List.mem a avoid)) (List.init arrays Fun.id) in
  let g_atom =
    G.oneof
      ([ G.map (fun n -> Num n) (G.int_range 1 9) ]
      @ (if scalars > 0 then [ G.map (fun s -> Scl s) (G.int_range 0 (scalars - 1)) ] else [])
      @
      match readable with
      | [] -> []
      | _ ->
        [ (let* a = G.oneofl readable in
           let* c = G.int_range (-2) 2 in
           G.pure (Elt (a, At c))) ])
  in
  let* e0 = g_atom in
  let* n = G.int_range 0 2 in
  let* rest = G.list_size (G.pure n) (G.pair g_op g_atom) in
  G.pure { e0; rest }

(* trips leave slack for |At| <= 2 offsets on both sides *)
let g_span ~asize =
  let* lo = G.int_range 2 4 in
  let* trip = G.int_range 8 (min 24 (asize - lo - 3)) in
  G.pure (lo, trip)

(* --- shape families: each yields (loop, promise) where the promise
   is what the analyser is expected to prove about the loop ---------- *)

type promise = P_none | P_doall | P_fission

let fam_doall ~asize ~arrays ~scalars =
  let* lo, trip = g_span ~asize in
  let* nset = G.int_range 1 (min 2 arrays) in
  let* dsts = distinct nset arrays in
  let* body =
    G.flatten_l
      (List.map
         (fun arr ->
           let* e = g_safe_expr ~arrays ~scalars ~avoid:dsts in
           G.pure (Set { arr; ix = At 0; e }))
         dsts)
  in
  G.pure ({ trip; lo; body; inner = None }, P_doall)

let fam_reduction ~asize ~arrays ~scalars:_ =
  let* lo, trip = g_span ~asize in
  let* s = G.int_range 0 0 in
  let* op = G.oneofl [ Add; Mul ] in
  (* no scalar reads in the reduced expression: scalars:0 *)
  let* e = g_safe_expr ~arrays ~scalars:0 ~avoid:[] in
  G.pure ({ trip; lo; body = [ Red { s; op; e } ]; inner = None }, P_none)

let fam_flow ~asize ~arrays ~scalars =
  let* kk = G.int_range 1 3 in
  let* lo = G.int_range (max 2 kk) (kk + 2) in
  let* trip = G.int_range 8 (min 24 (asize - lo - 3)) in
  let* arr = G.int_range 0 (arrays - 1) in
  let* e2 = g_safe_expr ~arrays ~scalars ~avoid:[ arr ] in
  let e = { e0 = Elt (arr, At (-kk)); rest = [ (Add, e2.e0) ] } in
  G.pure ({ trip; lo; body = [ Set { arr; ix = At 0; e } ]; inner = None }, P_none)

let fam_anti ~asize ~arrays ~scalars:_ =
  let* kk = G.int_range 1 2 in
  let* lo, trip = g_span ~asize in
  let* arr = G.int_range 0 (arrays - 1) in
  let e = { e0 = Elt (arr, At kk); rest = [ (Add, Num 1) ] } in
  G.pure ({ trip; lo; body = [ Set { arr; ix = At 0; e } ]; inner = None }, P_none)

let fam_waw ~asize ~arrays ~scalars =
  let* lo, trip = g_span ~asize in
  let* arr = G.int_range 0 (arrays - 1) in
  let* e1 = g_safe_expr ~arrays ~scalars ~avoid:[ arr ] in
  let* e2 = g_safe_expr ~arrays ~scalars ~avoid:[ arr ] in
  G.pure
    ( { trip; lo;
        body = [ Set { arr; ix = At 0; e = e1 }; Set { arr; ix = At 1; e = e2 } ];
        inner = None },
      P_none )

let fam_fixed ~asize ~arrays ~scalars =
  let* lo, trip = g_span ~asize in
  let* arr = G.int_range 0 (arrays - 1) in
  let* c = G.int_range 0 (asize - 1) in
  let* e = g_safe_expr ~arrays ~scalars ~avoid:[] in
  let* extra =
    if arrays > 1 then
      let other = (arr + 1) mod arrays in
      let* e2 = g_safe_expr ~arrays ~scalars ~avoid:[ other ] in
      G.pure [ Set { arr = other; ix = At 0; e = e2 } ]
    else G.pure []
  in
  G.pure ({ trip; lo; body = Set { arr; ix = Fix c; e } :: extra; inner = None }, P_none)

let fam_induction ~asize ~arrays ~scalars =
  let* s = G.int_range 0 (scalars - 1) in
  (* s starts at s+1 and bumps by 1: cells s+1 .. s+trip stay in range *)
  let* trip = G.int_range 8 (min 24 (asize - s - 3)) in
  let* lo = G.int_range 0 2 in
  let* arr = G.int_range 0 (arrays - 1) in
  let* e = g_safe_expr ~arrays ~scalars:0 ~avoid:[ arr ] in
  G.pure
    ( { trip; lo;
        body = [ Set { arr; ix = Sv s; e }; Bump { s; c = 1 } ];
        inner = None },
      P_none )

let fam_indirect ~asize ~arrays ~scalars ~iarrays =
  let* b = G.int_range 0 (iarrays - 1) in
  let* lo = G.int_range 0 2 in
  let* trip = G.int_range 8 (min 32 (asize - lo)) in
  let* arr = G.int_range 0 (arrays - 1) in
  let* e = g_safe_expr ~arrays ~scalars ~avoid:[ arr ] in
  G.pure ({ trip; lo; body = [ Set { arr; ix = Via b; e } ]; inner = None }, P_none)

let fam_brk ~asize ~arrays ~scalars =
  let* (l, _) = fam_doall ~asize ~arrays ~scalars in
  let* arr = G.int_range 0 (arrays - 1) in
  let* limit = G.int_range 40 96 in
  let brk = Brk { arr; ix = At 0; limit } in
  let* first = G.bool in
  let body = if first then brk :: l.body else l.body @ [ brk ] in
  G.pure ({ l with body }, P_none)

let fam_nested ~asize ~arrays ~scalars =
  let* otrip = G.int_range 3 6 in
  let* olo = G.int_range 2 4 in
  let* inner, _ =
    G.oneof
      [
        fam_doall ~asize ~arrays ~scalars;
        fam_flow ~asize ~arrays ~scalars;
        fam_reduction ~asize ~arrays ~scalars;
      ]
  in
  let* obody =
    if arrays > 1 then
      let* arr = G.int_range 0 (arrays - 1) in
      let* e = g_safe_expr ~arrays ~scalars ~avoid:[ arr ] in
      G.pure [ Set { arr; ix = At 0; e } ]
    else G.pure []
  in
  G.pure ({ trip = otrip; lo = olo; body = obody; inner = Some inner }, P_none)

(* a genuine carried scalar chain — the accumulator feeds back through
   its own multiply, so it is not a recognisable reduction — next to an
   independent streaming store: Static Dependence as a whole, but the
   dependence graph splits into a carried chain and a carried-free
   stream, the promised idiom of the LOOP_FISSION extension. The stream
   must read neither the accumulator nor the chain's source array (the
   compiler would share the load, and a shared node bridges the two
   groups into one) *)
let fam_mixed ~asize ~arrays ~scalars:_ =
  let* lo, trip = g_span ~asize in
  let* csrc = G.int_range 0 (arrays - 1) in
  let sdst = (csrc + 1) mod arrays in
  let chain =
    Red { s = 0; op = Add;
          e = { e0 = Scl 0; rest = [ (Mul, Num 3); (Add, Elt (csrc, At 0)) ] } }
  in
  let* e = g_safe_expr ~arrays ~scalars:0 ~avoid:[ csrc; sdst ] in
  let stream = Set { arr = sdst; ix = At 0; e } in
  G.pure ({ trip; lo; body = [ chain; stream ]; inner = None }, P_fission)

(* ------------------------------------------------------------------ *)

(* make every bound key unique and distinct from asize by shrinking
   trips (never growing them: the families' bounds stay valid) *)
let uniquify ~asize loops =
  let used = Hashtbl.create 8 in
  let claim (l : loop) =
    let t = ref l.trip in
    while !t > 0 && (Hashtbl.mem used (l.lo + !t) || l.lo + !t = asize) do
      decr t
    done;
    Hashtbl.replace used (l.lo + !t) ();
    { l with trip = !t }
  in
  List.filter_map
    (fun (l, p) ->
      let l = claim l in
      let l =
        match l.inner with Some i -> { l with inner = Some (claim i) } | None -> l
      in
      if l.trip = 0 || (match l.inner with Some i -> i.trip = 0 | None -> false)
      then None
      else Some (l, p))
    loops

let kernel_with ~mixed : Kernel.t G.t =
  let* asize = G.oneofl [ 32; 48; 64 ] in
  let* arrays = G.int_range 2 4 in
  let* scalars = G.int_range 1 3 in
  let* niarr = G.int_range 0 2 in
  let* iarrays =
    G.list_size (G.pure niarr)
      (let* istep = G.int_range 1 7 in
       let* ioff = G.int_range 0 5 in
       let* imod = G.int_range 4 asize in
       G.pure { istep; ioff; imod })
  in
  let* nloops = G.int_range 1 3 in
  let fams =
    [ (4, fam_doall ~asize ~arrays ~scalars);
      (2, fam_reduction ~asize ~arrays ~scalars);
      (2, fam_flow ~asize ~arrays ~scalars);
      (1, fam_anti ~asize ~arrays ~scalars);
      (1, fam_waw ~asize ~arrays ~scalars);
      (1, fam_fixed ~asize ~arrays ~scalars);
      (1, fam_induction ~asize ~arrays ~scalars);
      (1, fam_brk ~asize ~arrays ~scalars);
      (1, fam_nested ~asize ~arrays ~scalars);
      ((if mixed then 8 else 1), fam_mixed ~asize ~arrays ~scalars) ]
    @ if niarr > 0 then [ (2, fam_indirect ~asize ~arrays ~scalars ~iarrays:niarr) ] else []
  in
  let* loops = G.list_size (G.pure nloops) (G.frequency fams) in
  let* call =
    G.frequency
      [ (3, G.pure None);
        ( 1,
          let* cdst = G.int_range 0 (arrays - 1) in
          let* alias = G.frequency [ (2, G.pure false); (1, G.pure true) ] in
          let* csrc = if alias then G.pure cdst else G.int_range 0 (arrays - 1) in
          let* coff = G.int_range 0 2 in
          let* cadd = G.int_range 1 9 in
          let* ctrip = G.int_range 8 (asize - coff) in
          G.pure (Some { cdst; csrc; coff; cadd; ctrip }) ) ]
  in
  let loops = uniquify ~asize loops in
  (* promises only in call-free kernels: address-taken arrays can
     legitimately make the analyser conservative about DOALL proofs *)
  (* labels only in call-free kernels for the same reason *)
  let keys_of p =
    if call = None then
      List.filter_map
        (fun (l, q) -> if q = p then Some (l.lo + l.trip) else None)
        loops
    else []
  in
  let expect_doall = keys_of P_doall in
  let expect_fission = keys_of P_fission in
  G.pure
    { asize; arrays; scalars; iarrays; loops = List.map fst loops; call;
      expect_doall; expect_fission }

let kernel = kernel_with ~mixed:false
let kernel_mixed = kernel_with ~mixed:true

let sample ?(mixed = false) rand =
  let gen = if mixed then kernel_mixed else kernel in
  let rec go n =
    if n = 0 then failwith "Gen.sample: no valid kernel in 200 draws"
    else
      let k = G.generate1 ~rand gen in
      if Kernel.valid k then k else go (n - 1)
  in
  go 200
