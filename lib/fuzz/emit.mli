(** Deterministic jcc source emission for fuzz kernels.

    The emitted program is the kernel's meaning made executable: global
    arrays initialised by the same formulas the reference interpreter
    uses, the kernel loops written as literal-bound counted loops
    ([for (int i = lo; i < lo+trip; i++)] — so each loop's compare
    constant is its {!Kernel.loop} bound key and analyser reports can be
    matched back to kernel loops), the optional may-alias call, and a
    trailing observation block printing each array's weighted checksum
    and each scalar. Running the result natively must print exactly
    {!Kernel.truth.t_output}; that equality is itself one of the
    oracle's checks (emitter and interpreter validate each other). *)

(** jcc source text for a kernel. Total function on validated kernels;
    does not itself validate. *)
val source : Kernel.t -> string

(** [source] compiled to a JX image.
    @raise Failure if jcc rejects the source (an emitter bug — the
    oracle reports it as such). *)
val image : Kernel.t -> Janus_vx.Image.t
