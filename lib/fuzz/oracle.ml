module Janus = Janus_core.Janus
module Pipeline = Janus_core.Pipeline
module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Verify = Janus_verify.Verify
module Rule = Janus_schedule.Rule
module Schedule = Janus_schedule.Schedule
module Looptree = Janus_analysis.Looptree

type failure = { f_check : string; f_detail : string }
type outcome = Pass | Skip of string | Fail of failure list

let default_threads = [ 1; 2; 4; 8 ]

let failures = function Pass | Skip _ -> [] | Fail fs -> fs

let pp_failure fmt f = Format.fprintf fmt "[%s] %s" f.f_check f.f_detail

(* thresholds zeroed: the generated kernels are tiny, and profitability
   filtering is not what this harness tests — every analysable loop
   must go through selection, scheduling and parallel execution *)
let cfg ~threads ~adapt =
  Janus.config ~threads ~cov_threshold:0.0 ~trip_threshold:0.0
    ~work_threshold:0.0 ~verify:true ~adapt ()

(* a report's loop is matched back to a kernel loop through the compare
   constant: the unroller splits each source loop into a main variant
   (bound B-1, adjust 1) and a remainder (bound B, adjust 0), and
   [iv_bound_const + bound_adjust] recovers the source bound B = lo +
   trip — the kernel loop's bound key — for both *)
let report_key (r : Loopanal.report) =
  match r.Loopanal.iv with
  | None -> None
  | Some iv -> (
    match iv.Loopanal.iv_bound_const with
    | None -> None
    | Some b -> Some (Int64.to_int (Int64.add b iv.Loopanal.bound_adjust)))

let check ?(threads = default_threads) (k : Kernel.t) =
  match Kernel.validate k with
  | Some m -> Skip m
  | None -> (
    match Kernel.ground_truth k with
    | exception Kernel.Invalid m -> Skip m
    | truth -> (
      let fails = ref [] in
      let fail c fmt =
        Printf.ksprintf
          (fun d -> fails := { f_check = c; f_detail = d } :: !fails)
          fmt
      in
      match Emit.image k with
      | exception Failure m ->
        fail "emit" "%s" m;
        Fail (List.rev !fails)
      | img ->
        let native = Janus.run_native img in
        if not (String.equal native.Janus.output truth.Kernel.t_output) then
          fail "interp-vs-native"
            "expected output %S, native printed %S" truth.Kernel.t_output
            native.Janus.output;
        if native.Janus.exit_code <> 0 then
          fail "native-exit" "exit code %d" native.Janus.exit_code;
        if native.Janus.aborted <> None then
          fail "native-aborted" "native run ran out of fuel";
        (* one run's architectural state and cycle-model invariants *)
        let check_run name (r : Janus.result) =
          if not (String.equal r.Janus.output native.Janus.output) then
            fail "output-mismatch" "%s printed %S, native %S" name
              r.Janus.output native.Janus.output;
          if r.Janus.exit_code <> native.Janus.exit_code then
            fail "exit-mismatch" "%s exited %d, native %d" name
              r.Janus.exit_code native.Janus.exit_code;
          if not (String.equal r.Janus.mem_digest native.Janus.mem_digest) then
            fail "memory-mismatch" "%s final memory differs from native" name;
          if r.Janus.aborted <> None then
            fail "aborted" "%s ran out of fuel" name;
          let b = r.Janus.breakdown in
          let parts =
            b.Janus.translate_cycles + b.Janus.check_cycles
            + b.Janus.init_finish_cycles + b.Janus.par_cycles
          in
          if parts > r.Janus.cycles then
            fail "cycle-model" "%s component cycles %d exceed total %d" name
              parts r.Janus.cycles;
          if
            b.Janus.translate_cycles < 0 || b.Janus.check_cycles < 0
            || b.Janus.init_finish_cycles < 0 || b.Janus.par_cycles < 0
            || b.Janus.seq_cycles < 0
          then fail "cycle-model" "%s has a negative cycle component" name
        in
        check_run "dbm-sequential" (Janus.run_dbm_only img);
        (* the static side once, shared across thread counts *)
        let store = Pipeline.store () in
        let base = cfg ~threads:4 ~adapt:false in
        let prepared = Janus.prepare ~cfg:base ~store img in
        (* classification soundness against interpreter ground truth *)
        (* machine iterations of the loop the report describes. jcc
           multi-versions each source loop (unroll by 2), so a
           dependent 2-iteration source loop legitimately yields a
           DOALL-classified main variant with a single machine trip —
           only variants that actually iterate can be misclassified *)
        let machine_trips (r : Loopanal.report) =
          match r.Loopanal.iv with
          | None -> None
          | Some iv -> (
            match iv.Loopanal.iv_init_const, iv.Loopanal.iv_bound_const with
            | Some i0, Some b ->
              let step = Int64.to_int iv.Loopanal.iv_step in
              if step = 0 then None
              else
                let span = Int64.to_int (Int64.sub b i0) in
                Some ((span + step - 1) / step)
            | _ -> None)
        in
        let doall_reports =
          List.filter
            (fun (r : Loopanal.report) ->
              match r.Loopanal.cls with
              | Loopanal.Static_doall -> true
              | _ -> false)
            prepared.Janus.p_analysis.Analysis.reports
        in
        (* any variant classified DOALL keeps a promise... *)
        let doall_keys = List.filter_map report_key doall_reports in
        (* ...but only an *iterating* variant can be misclassified *)
        let iterating_doall_keys =
          List.filter_map
            (fun r ->
              match machine_trips r with
              | Some t when t < 2 -> None
              | _ -> report_key r)
            doall_reports
        in
        List.iter
          (fun (v : Kernel.verdict) ->
            match v.Kernel.v_key with
            | Some key
              when v.Kernel.v_dependent && List.mem key iterating_doall_keys
              ->
              fail "misclassified"
                "loop with bound %d is cross-iteration dependent (%s) yet \
                 classified Static DOALL"
                key v.Kernel.v_why
            | _ -> ())
          truth.Kernel.t_verdicts;
        List.iter
          (fun key ->
            if not (List.mem key doall_keys) then
              fail "promise-broken"
                "loop with bound %d was promised Static DOALL but was not \
                 classified as such"
                key)
          k.Kernel.expect_doall;
        (* the schedule that runs must be clean: every Error finding
           demoted its loop (or emptied the schedule) *)
        let _sched', demoted, findings =
          Verify.check_and_demote img prepared.Janus.p_schedule
        in
        List.iter
          (fun (f : Verify.finding) ->
            if f.Verify.severity = Verify.Error then
              match f.Verify.lid with
              | Some l when List.mem l demoted -> ()
              | _ ->
                fail "verify-undemoted"
                  "schedule error %s not demoted: %s" f.Verify.code
                  f.Verify.message)
          findings;
        (* parallel execution at each thread count *)
        List.iter
          (fun t ->
            let r = Janus.run_parallel ~cfg:(cfg ~threads:t ~adapt:false) prepared in
            check_run (Printf.sprintf "parallel-%dt" t) r)
          threads;
        (* the adaptive governor must preserve semantics too *)
        check_run "adaptive"
          (Janus.run_parallel ~cfg:(cfg ~threads:4 ~adapt:true) prepared);
        (* the fission extension: same architectural state at 1 and 4
           threads, and every promised-fissionable loop must actually
           split and survive the verifier *)
        let fission_cfg ~threads =
          Janus.config ~threads ~cov_threshold:0.0 ~trip_threshold:0.0
            ~work_threshold:0.0 ~verify:true ~fission:true ()
        in
        let fprepared =
          Janus.prepare ~cfg:(fission_cfg ~threads:4) ~store img
        in
        check_run "fission-1t"
          (Janus.run_parallel ~cfg:(fission_cfg ~threads:1) fprepared);
        let rf = Janus.run_parallel ~cfg:(fission_cfg ~threads:4) fprepared in
        check_run "fission-4t" rf;
        (match k.Kernel.expect_fission with
        | [] -> ()
        | keys ->
          let fission_lids =
            List.filter_map
              (fun (r : Rule.t) ->
                if r.Rule.id = Rule.LOOP_FISSION then
                  Some (Int64.to_int r.Rule.aux)
                else None)
              fprepared.Janus.p_schedule.Schedule.rules
          in
          List.iter
            (fun key ->
              let split =
                List.filter_map
                  (fun (r : Loopanal.report) ->
                    let lid = r.Loopanal.loop.Looptree.lid in
                    if report_key r = Some key && List.mem lid fission_lids
                    then Some lid
                    else None)
                  fprepared.Janus.p_analysis.Analysis.reports
              in
              if split = [] then
                fail "fission-promise-broken"
                  "loop with bound %d was promised fissionable but no \
                   variant got a LOOP_FISSION rule"
                  key
              else if
                List.for_all
                  (fun l -> List.mem l rf.Janus.demoted_loops)
                  split
              then
                fail "fission-demoted"
                  "loop with bound %d split but every fission schedule \
                   was demoted by the verifier"
                  key)
            keys);
        (* determinism: same prepared pipeline, cold store then warm *)
        let r1 = Janus.run_parallel ~cfg:base prepared in
        let r2 = Janus.run_parallel ~cfg:base prepared in
        if
          not
            (String.equal r1.Janus.output r2.Janus.output
            && r1.Janus.cycles = r2.Janus.cycles
            && String.equal r1.Janus.mem_digest r2.Janus.mem_digest)
        then
          fail "nondeterministic"
            "cold/warm parallel runs differ (cycles %d vs %d)"
            r1.Janus.cycles r2.Janus.cycles;
        if !fails = [] then Pass else Fail (List.rev !fails)))

(* a truly flow-dependent loop whose expect_doall claims DOALL: the
   classifier (correctly) refuses, so the oracle must report
   promise-broken — proving the harness can catch a lying analyser *)
let mislabelled : Kernel.t =
  let body =
    [
      Kernel.Set
        {
          arr = 0;
          ix = Kernel.At 0;
          e =
            {
              Kernel.e0 = Kernel.Elt (0, Kernel.At (-1));
              rest = [ (Kernel.Add, Kernel.Elt (1, Kernel.At 0)) ];
            };
        };
    ]
  in
  {
    Kernel.asize = 32;
    arrays = 2;
    scalars = 1;
    iarrays = [];
    loops = [ { Kernel.trip = 20; lo = 1; body; inner = None } ];
    call = None;
    expect_doall = [ 21 ];
    expect_fission = [];
  }
