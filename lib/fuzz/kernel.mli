(** Typed loop-nest kernels with {e known ground truth}, the subject
    language of the differential fuzzing harness.

    A kernel is a closed mini-C program sketch: global [int] data
    arrays, index arrays with formula-defined contents, scalars, a
    sequence of (possibly two-deep) counted loops over statement bodies
    drawn from the shapes the Janus analyser has to get right — plain
    DOALL stores, reductions, secondary-induction indexing,
    cross-iteration array dependences, loop-invariant (privatisable)
    cells, indirect [a\[b\[i\]\]] accesses, early exits — plus an
    optional call through may-alias pointer parameters.

    Because the kernel is fully closed (no inputs, formula-defined
    initial state), a reference interpreter can both compute the exact
    expected output and derive a {e per-loop dependence verdict} from
    the concrete addresses each iteration touches. Those verdicts are
    the oracle's ground truth: a loop the interpreter proves
    cross-iteration dependent must never be classified Static DOALL by
    the analyser ({!Oracle}). *)

(** Binary operators usable in kernel expressions (no division: guest
    division by zero traps, and modelling trap equivalence is not this
    harness's job). *)
type op = Add | Sub | Mul

(** Array subscript forms. [At c] is [iv + c] of the innermost
    enclosing loop; [Out c] is the {e outer} loop's iv ([At] at top
    level); [Via b] is [b<b>\[iv\]] through index array [b]; [Fix c] is
    a loop-invariant constant cell; [Sv s] subscripts by scalar [s]
    (a secondary induction variable when [s] is bumped). *)
type idx = At of int | Out of int | Via of int | Fix of int | Sv of int

type atom =
  | Num of int           (** small literal *)
  | Scl of int           (** scalar [s<k>] *)
  | Elt of int * idx     (** data array element [a<k>\[idx\]] *)

(** Left-folded expression [((a0 op1 a1) op2 a2) ...], emitted fully
    parenthesised so guest evaluation order is unambiguous. *)
type expr = { e0 : atom; rest : (op * atom) list }

type stmt =
  | Set of { arr : int; ix : idx; e : expr }   (** [a\[ix\] = e;] *)
  | Red of { s : int; op : op; e : expr }      (** [s = s op e;] *)
  | Bump of { s : int; c : int }               (** [s = s + c;] *)
  | Brk of { arr : int; ix : idx; limit : int }
      (** [if (a\[ix\] > limit) break;] *)

(** A counted loop [for (iv = lo; iv < lo + trip; iv++)]. [lo + trip]
    is the loop's {e bound key}: the constant the compiled compare
    tests against, used to match analyser loop reports back to kernel
    loops. *)
type loop = { trip : int; lo : int; body : stmt list; inner : loop option }

(** Index-array contents: [b\[k\] = (k * istep + ioff) mod imod], so
    [imod < asize] (or a non-coprime [istep]) manufactures duplicate
    indices — ground-truth dependent indirect stores. *)
type iarr = { istep : int; ioff : int; imod : int }

(** [kfn(&a<cdst>, &a<csrc>, ctrip)] where
    [kfn(int *p, int *q, int n)] runs [p\[i\] = q\[i + coff\] + cadd]:
    may-alias pointer parameters, aliasing for real when
    [cdst = csrc]. *)
type call = { cdst : int; csrc : int; coff : int; cadd : int; ctrip : int }

type t = {
  asize : int;            (** every array's element count *)
  arrays : int;           (** data arrays [a0..] *)
  scalars : int;          (** scalars [s0..], initialised to [k + 1] *)
  iarrays : iarr list;    (** index arrays [b0..] *)
  loops : loop list;
  call : call option;
  expect_doall : int list;
      (** bound keys of loops {e promised} to classify Static DOALL —
          the generator only promises shapes the analyser is expected
          to prove, and the oracle fails a kernel whose promise is not
          met (which is also how a deliberately mislabelled kernel
          demonstrates the oracle can catch bugs) *)
  expect_fission : int list;
      (** bound keys of loops promised to be {e fissionable}: Static
          Dependence overall (a genuine carried chain) but with an
          independent carried-free statement group, so the analyser run
          with [~fission] must split out a parallel product; disjoint
          from [expect_doall] *)
}

(** {1 Validity and ground truth} *)

exception Invalid of string
(** Raised by {!ground_truth} on kernels that are structurally out of
    range or touch an array out of bounds — a rejected input, not an
    oracle violation. *)

(** Structural check (reference ranges, bound-key uniqueness, size
    budgets). [None] = plausibly valid; the interpreter still rejects
    dynamic violations (out-of-bounds subscripts). *)
val validate : t -> string option

(** One loop's ground truth. [v_key] is the loop's bound key ([None]
    for the symbolic-bound call loop). [v_dependent] is set only for
    {e definite, assertable} cross-iteration dependence: a memory
    conflict on iteration-varying addresses, a read-back accumulator,
    or a data-dependent early exit. Conflicts confined to
    loop-invariant cells are excluded — those are the privatisable
    idiom the runtime handles by design. *)
type verdict = { v_key : int option; v_dependent : bool; v_why : string }

type truth = {
  t_output : string;          (** exact expected guest stdout *)
  t_verdicts : verdict list;  (** one per loop, inner loops included *)
}

(** Execute the kernel in the reference interpreter: exact expected
    output (64-bit wrapping arithmetic, [%Ld] print format) plus
    per-loop dependence verdicts from concrete footprints.
    @raise Invalid on structurally or dynamically invalid kernels. *)
val ground_truth : t -> truth

(** [true] when {!validate} passes and {!ground_truth} does not raise. *)
val valid : t -> bool

(** Total statements executed by the interpreter — a work bound the
    generator keeps small enough for many full-pipeline runs. *)
val work : t -> int

(** {1 Codec}

    Kernels round-trip through a human-readable s-expression form; the
    regression corpus under [test/corpus/] stores this format. *)

val to_string : t -> string

(** @raise Invalid on malformed text. *)
val of_string : string -> t

val pp : Format.formatter -> t -> unit

(** {1 Structure helpers} *)

(** Bound keys of all loops, inner included, outermost first. *)
val bound_keys : t -> int list

(** Number of loops (inner and call loops included). *)
val loop_count : t -> int

(** Number of statements across all loop bodies. *)
val stmt_count : t -> int
