(** Binary decoder for VX64 instructions, the exact inverse of
    {!Encode}. Used by the static analyser's disassembler and by the
    DBM when building basic blocks from application code. *)

exception Bad_encoding of int  (* byte offset *)

type cursor = { buf : bytes; mutable pos : int }

let u8 c =
  if c.pos >= Bytes.length c.buf then raise (Bad_encoding c.pos);
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let i8 c =
  let v = u8 c in
  if v >= 128 then v - 256 else v

let i32 c =
  let a = u8 c and b = u8 c and d = u8 c and e = u8 c in
  let v = a lor (b lsl 8) lor (d lsl 16) lor (e lsl 24) in
  (* sign-extend from 32 bits *)
  (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let i64 c =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (u8 c)) (8 * i))
  done;
  !v

(* The register / condition / sub-opcode converters signal an
   out-of-range byte with Invalid_argument. Each conversion site wraps
   that into Bad_encoding at the offending byte's offset — and only
   those sites, so a genuine programming error elsewhere in the decoder
   (a bad Array/Bytes index, a misuse of a stdlib function) surfaces as
   the Invalid_argument it is instead of masquerading as a malformed
   input. *)
let conv c f v =
  try f v with Invalid_argument _ -> raise (Bad_encoding (c.pos - 1))

let gp c = conv c Reg.gp_of_index (u8 c)
let fp c = conv c Reg.fp_of_index (u8 c)
let cond c = conv c Cond.of_int (u8 c)

let mem c : Operand.mem =
  let flags = u8 c in
  let base = if flags land 1 <> 0 then Some (gp c) else None in
  let index, scale =
    if flags land 2 <> 0 then begin
      let r = gp c in
      let s = u8 c in
      (Some r, s)
    end
    else (None, 1)
  in
  let disp = i32 c in
  { base; index; scale; disp }

let operand c =
  match u8 c with
  | 0 -> Operand.Reg (gp c)
  | 1 -> Operand.Imm (i64 c)
  | 2 -> Operand.Mem (mem c)
  | 3 -> Operand.Imm (Int64.of_int (i8 c))
  | 4 -> Operand.Imm (Int64.of_int (i32 c))
  | _ -> raise (Bad_encoding (c.pos - 1))

let fop c =
  match u8 c with
  | 0 -> Operand.Freg (fp c)
  | 1 -> Operand.Fmem (mem c)
  | _ -> raise (Bad_encoding (c.pos - 1))

let insn c : Insn.t =
  let op = u8 c in
  if op = Encode.op_nop then Nop
  else if op = Encode.op_hlt then Hlt
  else if op = Encode.op_mov then
    let d = operand c in
    let s = operand c in
    Mov (d, s)
  else if op = Encode.op_lea then
    let r = gp c in
    Lea (r, mem c)
  else if op = Encode.op_alu then
    let a = conv c Encode.alu_of_code (u8 c) in
    let d = operand c in
    let s = operand c in
    Alu (a, d, s)
  else if op = Encode.op_neg then Neg (operand c)
  else if op = Encode.op_not then Not (operand c)
  else if op = Encode.op_idiv then Idiv (operand c)
  else if op = Encode.op_cmp then
    let x = operand c in
    let y = operand c in
    Cmp (x, y)
  else if op = Encode.op_test then
    let x = operand c in
    let y = operand c in
    Test (x, y)
  else if op = Encode.op_jmp_d then Jmp (Direct (i32 c))
  else if op = Encode.op_jmp_i then Jmp (Indirect (operand c))
  else if op = Encode.op_jcc then
    let cond = cond c in
    Jcc (cond, i32 c)
  else if op = Encode.op_call_d then Call (Direct (i32 c))
  else if op = Encode.op_call_i then Call (Indirect (operand c))
  else if op = Encode.op_ret then Ret
  else if op = Encode.op_push then Push (operand c)
  else if op = Encode.op_pop then Pop (operand c)
  else if op = Encode.op_cmov then
    let cond = cond c in
    let r = gp c in
    Cmov (cond, r, operand c)
  else if op = Encode.op_fmov then
    let w = conv c Encode.width_of_code (u8 c) in
    let d = fop c in
    let s = fop c in
    Fmov (w, d, s)
  else if op = Encode.op_fbin then
    let wb = u8 c in
    let w = conv c Encode.width_of_code (wb lsr 4) in
    let fb = conv c Encode.fbin_of_code (wb land 0xf) in
    let d = fp c in
    Fbin (w, fb, d, fop c)
  else if op = Encode.op_fsqrt then
    let w = conv c Encode.width_of_code (u8 c) in
    let d = fp c in
    Fsqrt (w, d, fop c)
  else if op = Encode.op_fcmp then
    let d = fp c in
    Fcmp (d, fop c)
  else if op = Encode.op_cvtsi2sd then
    let d = fp c in
    Cvtsi2sd (d, operand c)
  else if op = Encode.op_cvtsd2si then
    let d = gp c in
    Cvtsd2si (d, fop c)
  else if op = Encode.op_fbcast then
    let w = conv c Encode.width_of_code (u8 c) in
    let d = fp c in
    Fbcast (w, d, fop c)
  else if op = Encode.op_syscall then Syscall (u8 c)
  else if op = Encode.op_prefetch then Prefetch (mem c)
  else raise (Bad_encoding (c.pos - 1))

(** Decode one instruction at [pos]; returns the instruction and its
    encoded length. Any malformation — unknown opcode, truncated
    operand, out-of-range register/condition/sub-opcode — raises
    [Bad_encoding] with the offending offset (the range errors are
    wrapped at the individual conversion sites, so an [Invalid_argument]
    escaping here is a decoder bug, not a malformed input). *)
let one buf pos =
  let c = { buf; pos } in
  let i = insn c in
  (i, c.pos - pos)

(** Decode a whole code buffer into [(offset, insn, length)] triples. *)
let all buf =
  let rec go pos acc =
    if pos >= Bytes.length buf then List.rev acc
    else
      let i, len = one buf pos in
      go (pos + len) ((pos, i, len) :: acc)
  in
  go 0 []
