(** A loaded guest program: decoded code maps for application text, PLT
    stubs and runtime-resolved library code, plus an initialised guest
    memory.

    Decoding happens once at load into flat parallel side tables
    (instruction, encoded length, precomputed {!Cost.of_insn}) for each
    code range, so the executors' fetch path is a few array loads with
    no option allocation and no per-instruction cost match. The
    [__par_for] intrinsic's PLT slot address is also resolved at load
    ({!par_for_addr}), turning the interpreters' per-step "is this an
    intrinsic?" string lookup into one integer compare. *)

open Janus_vx

type t = {
  image : Image.t;
  lib : Libcalls.t;
  plt : string array;  (* slot index -> external name *)
  mem : Memory.t;
  (* flat dispatch side tables; len 0 = hole / unresolved *)
  text_insn : Insn.t array;  (* indexed by addr - text_base *)
  text_len : int array;
  text_cost : int array;
  lib_insn : Insn.t array;   (* indexed by addr - lib_base *)
  lib_len : int array;
  lib_cost : int array;
  plt_insn : Insn.t array;   (* indexed by slot: Jmp to the resolved entry *)
  plt_len : int array;
  par_for_addr : int;        (* __par_for's PLT slot address, or -1 *)
}

(** Classify a code address so executors know where an instruction
    comes from; the DBM uses this to detect dynamically discovered
    code. *)
type code_class = App | Plt of string | Lib

(* The library fragments are immutable once built (code array, entry
   alist, data bytes are never written after construction — the data
   bytes are *copied* into each program's libdata region), so one
   instance can back every loaded program. Built eagerly at module
   init: domain-safe without a lazy. *)
let shared_lib = Libcalls.build ()

(* ... and so can its flat dispatch tables. *)
let shared_lib_tables =
  let lib = shared_lib in
  let lib_n = max lib.Libcalls.code_len 1 in
  let lib_insn = Array.make lib_n Insn.Nop in
  let lib_len = Array.make lib_n 0 in
  let lib_cost = Array.make lib_n 0 in
  Array.iteri
    (fun off (i, len) ->
      if len > 0 then begin
        lib_insn.(off) <- i;
        lib_len.(off) <- len;
        lib_cost.(off) <- Cost.of_insn i
      end)
    lib.Libcalls.code;
  (lib_insn, lib_len, lib_cost)

let load (image : Image.t) =
  let text_bytes = max (Bytes.length image.text) 1 in
  let text_insn = Array.make text_bytes Insn.Nop in
  let text_len = Array.make text_bytes 0 in
  let text_cost = Array.make text_bytes 0 in
  List.iter
    (fun (off, i, len) ->
      text_insn.(off) <- i;
      text_len.(off) <- len;
      text_cost.(off) <- Cost.of_insn i)
    (Decode.all image.text);
  let lib = shared_lib in
  let lib_insn, lib_len, lib_cost = shared_lib_tables in
  let plt = Array.of_list image.externals in
  let plt_insn = Array.make (max (Array.length plt) 1) Insn.Nop in
  let plt_len = Array.make (max (Array.length plt) 1) 0 in
  let par_for_addr = ref (-1) in
  Array.iteri
    (fun i name ->
      if String.equal name Libcalls.intrinsic_par_for then
        par_for_addr := Layout.plt_slot_addr i
      else
        match Libcalls.entry lib name with
        | Some e ->
          plt_insn.(i) <- Insn.Jmp (Insn.Direct e);
          plt_len.(i) <- Layout.plt_slot
        | None -> ())
    plt;
  let mem = Memory.create () in
  ignore
    (Memory.add_region mem ~name:"data" ~start:Layout.data_base
       ~size:(max (Bytes.length image.data) 8));
  Memory.blit mem ~addr:Layout.data_base image.data;
  if image.bss_size > 0 then
    ignore
      (Memory.add_region mem ~name:"bss" ~start:Layout.bss_base
         ~size:image.bss_size);
  ignore
    (Memory.add_region mem ~name:"heap" ~start:Layout.heap_base
       ~size:(Layout.heap_limit - Layout.heap_base));
  ignore
    (Memory.add_region mem ~name:"libdata" ~start:Layout.lib_data_base
       ~size:(max (Bytes.length lib.data) 8));
  Memory.blit mem ~addr:Layout.lib_data_base lib.data;
  ignore
    (Memory.add_region mem ~name:"stack"
       ~start:(Layout.stack_top - Layout.stack_size)
       ~size:(Layout.stack_size + 8));
  { image; lib; plt; mem; text_insn; text_len; text_cost;
    lib_insn; lib_len; lib_cost; plt_insn; plt_len;
    par_for_addr = !par_for_addr }

let add_thread_regions t ~threads =
  for i = 0 to threads - 1 do
    let top = Layout.tstack_top i in
    if Memory.region_by_name t.mem (Printf.sprintf "tstack%d" i) = None then begin
      ignore
        (Memory.add_region t.mem
           ~name:(Printf.sprintf "tstack%d" i)
           ~start:(top - Layout.tstack_size)
           ~size:(Layout.tstack_size + 8));
      ignore
        (Memory.add_region t.mem
           ~name:(Printf.sprintf "tls%d" i)
           ~start:(Layout.tls_base i) ~size:Layout.tls_size)
    end
  done

let classify t addr : code_class option =
  if Layout.in_text addr then App
                             |> Option.some
  else if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i < Array.length t.plt then Some (Plt t.plt.(i)) else None
  end
  else if Layout.in_lib addr then Some Lib
  else None

(** Fetch the instruction at a code address, treating PLT slots as
    jumps to the resolved library entry. Kept for translation-time and
    analysis callers; the execution loops use the flat side tables
    directly. *)
let fetch t addr : (Insn.t * int) option =
  if Layout.in_text addr then begin
    let off = addr - Layout.text_base in
    if off >= Array.length t.text_len || t.text_len.(off) = 0 then None
    else Some (t.text_insn.(off), t.text_len.(off))
  end
  else if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i >= Array.length t.plt || addr <> Layout.plt_slot_addr i then None
    else if t.plt_len.(i) = 0 then None  (* intrinsic or unresolved *)
    else Some (t.plt_insn.(i), t.plt_len.(i))
  end
  else Libcalls.fetch t.lib addr

(** The external name whose PLT slot is [addr], if any. *)
let plt_name t addr =
  if Layout.in_plt addr then begin
    let i = Layout.plt_index_of_addr addr in
    if i < Array.length t.plt && addr = Layout.plt_slot_addr i then
      Some t.plt.(i)
    else None
  end
  else None
