(** A loaded guest program: decoded code maps for application text, PLT
    stubs and runtime-resolved library code, plus initialised guest
    memory regions.

    Code is decoded once at load into flat parallel side tables —
    instruction, encoded length ([0] marks a hole) and precomputed
    {!Janus_vx.Cost.of_insn} — so executors fetch with plain array
    loads: no option allocation, no per-instruction cost match, and
    the [__par_for] intrinsic check is one compare against
    {!field:t.par_for_addr}. *)

open Janus_vx

type t = {
  image : Image.t;
  lib : Libcalls.t;
  plt : string array;           (** PLT slot index -> external name *)
  mem : Memory.t;
  text_insn : Insn.t array;     (** indexed by addr - text_base *)
  text_len : int array;         (** encoded length; 0 = hole *)
  text_cost : int array;        (** {!Cost.of_insn}, precomputed *)
  lib_insn : Insn.t array;      (** indexed by addr - lib_base *)
  lib_len : int array;
  lib_cost : int array;
  plt_insn : Insn.t array;      (** per slot: jump to the resolved entry *)
  plt_len : int array;          (** 0 = unresolved or intrinsic slot *)
  par_for_addr : int;           (** [__par_for]'s PLT slot address, or -1 *)
}

(** Where a code address comes from: application text, a PLT stub, or
    dynamically discovered library code (§II-E3). *)
type code_class = App | Plt of string | Lib

(** Load an image: decode its text and set up data/bss/heap/stack and
    library regions. *)
val load : Image.t -> t

(** Create private stack and TLS regions for [threads] workers
    (idempotent). *)
val add_thread_regions : t -> threads:int -> unit

val classify : t -> int -> code_class option

(** The instruction at a code address (PLT slots resolve to jumps into
    library code); [None] outside any code region or mid-instruction.
    Translation-time / analysis API — the execution loops read the
    flat side tables instead. *)
val fetch : t -> int -> (Insn.t * int) option

(** The external whose PLT slot is at this address, if any. *)
val plt_name : t -> int -> string option
