(** A VX64 machine context: register file, flags, instruction pointer
    and cycle counters. One context per hardware thread; all contexts
    of a run share one {!Memory.t} and output buffer.

    The hot state is flat: the four condition flags are packed into one
    mutable int (a single store per flag-setting instruction, a single
    load per conditional) and the FP register file is one unboxed
    [float array] of [fp_count * 4] lanes, so forks, checkpoints and
    rollbacks are single [Array.blit]s with no per-register boxing. *)

open Janus_vx

(** {2 Packed condition flags}

    Bit layout of the [flags] word; [flags_zf] etc. test a bit,
    [pack_flags] builds a word from the four booleans. *)

let flag_zf = 1          (* zero: last compare was equal / result zero *)
let flag_lt = 2          (* signed less-than of the last compare *)
let flag_ult = 4         (* unsigned less-than *)
let flag_sf = 8          (* sign of the last result *)

let pack_flags ~zf ~lt ~ult ~sf =
  (if zf then flag_zf else 0)
  lor (if lt then flag_lt else 0)
  lor (if ult then flag_ult else 0)
  lor (if sf then flag_sf else 0)

(** A word-based software transaction (paper §II-E2). While installed,
    rewritten memory accesses buffer stores and record read versions;
    validation is value-based, commit is in thread order. The
    checkpoint covers the whole architectural context — registers,
    FP registers, rip, condition flags and the heap bump pointer — so
    an aborted transaction cannot leak flag or brk state from the
    rolled-back path into the retry. *)
type txn = {
  treads : (int, int64) Hashtbl.t;   (* address -> value observed *)
  twrites : (int, int64) Hashtbl.t;  (* address -> buffered value *)
  mutable taborted : bool;
  checkpoint_regs : int64 array;
  checkpoint_fregs : float array;
  checkpoint_rip : int;
  checkpoint_flags : int;
  checkpoint_brk : int;
}

type t = {
  regs : int64 array;          (* indexed by Reg.gp_index *)
  fregs : float array;         (* flat: register r, lane l at r*4+l *)
  mutable flags : int;         (* packed flag_zf/lt/ult/sf bits *)
  mutable rip : int;
  mem : Memory.t;
  mutable cycles : int;
  mutable icount : int;
  mutable halted : bool;
  mutable exit_code : int;
  out : Buffer.t;
  input : int64 Queue.t;       (* values returned by sys_read_int *)
  mutable txn : txn option;    (* set while executing speculative accesses *)
  mutable observe : (rw -> addr:int -> bytes:int -> unit) option;
  mutable brk : int;           (* heap bump pointer *)
  mutable model_cache : bool;  (* charge Cost.cache_miss on cold lines *)
  warm : (int, unit) Hashtbl.t;   (* warm cache lines (line number) *)
  warm_fifo : int Queue.t;        (* insertion order, for eviction *)
}

and rw = Read | Write

let create ?(out = Buffer.create 256) mem =
  {
    regs = Array.make Reg.gp_count 0L;
    fregs = Array.make (Reg.fp_count * 4) 0.0;
    flags = 0;
    rip = 0;
    mem;
    cycles = 0;
    icount = 0;
    halted = false;
    exit_code = 0;
    out;
    input = Queue.create ();
    txn = None;
    observe = None;
    brk = Layout.heap_base;
    model_cache = false;
    warm = Hashtbl.create 256;
    warm_fifo = Queue.create ();
  }

(** A thread context sharing memory, output and heap-allocation state
    with [parent] but with its own registers, flags and counters. *)
let fork parent =
  {
    regs = Array.copy parent.regs;
    fregs = Array.copy parent.fregs;
    flags = parent.flags;
    rip = parent.rip;
    mem = parent.mem;
    cycles = 0;
    icount = 0;
    halted = false;
    exit_code = 0;
    out = parent.out;
    input = parent.input;
    txn = None;
    observe = None;
    brk = parent.brk;
    (* each virtual core has a private cache: fresh (cold) warm set *)
    model_cache = parent.model_cache;
    warm = Hashtbl.create 256;
    warm_fifo = Queue.create ();
  }

(* Reg.gp_index/fp_index are total over their constructors and lanes
   are bounded by Insn.lanes, so the register files never index out of
   range — unsafe accesses keep the interpreter's hottest loads and
   stores bounds-check-free. *)
let get ctx r = Array.unsafe_get ctx.regs (Reg.gp_index r)
let set ctx r v = Array.unsafe_set ctx.regs (Reg.gp_index r) v
let getf ctx r lane = Array.unsafe_get ctx.fregs ((Reg.fp_index r * 4) + lane)

let setf ctx r lane v =
  Array.unsafe_set ctx.fregs ((Reg.fp_index r * 4) + lane) v

let start_txn ctx =
  let t =
    {
      treads = Hashtbl.create 32;
      twrites = Hashtbl.create 32;
      taborted = false;
      checkpoint_regs = Array.copy ctx.regs;
      checkpoint_fregs = Array.copy ctx.fregs;
      checkpoint_rip = ctx.rip;
      checkpoint_flags = ctx.flags;
      checkpoint_brk = ctx.brk;
    }
  in
  ctx.txn <- Some t;
  t

let rollback ctx t =
  Array.blit t.checkpoint_regs 0 ctx.regs 0 (Array.length ctx.regs);
  Array.blit t.checkpoint_fregs 0 ctx.fregs 0 (Array.length ctx.fregs);
  ctx.rip <- t.checkpoint_rip;
  ctx.flags <- t.checkpoint_flags;
  ctx.brk <- t.checkpoint_brk;
  ctx.txn <- None

let end_txn ctx = ctx.txn <- None

(** {2 Data-cache warmth (prefetch extension)} *)

(** Mark the line containing [addr] warm (evicting FIFO at capacity). *)
let warm_line ctx addr =
  let line = addr / Janus_vx.Cost.cache_line in
  if not (Hashtbl.mem ctx.warm line) then begin
    Hashtbl.replace ctx.warm line ();
    Queue.push line ctx.warm_fifo;
    if Queue.length ctx.warm_fifo > Janus_vx.Cost.cache_lines then begin
      let victim = Queue.pop ctx.warm_fifo in
      Hashtbl.remove ctx.warm victim
    end
  end

(** Charge a miss if [addr]'s line is cold, then warm it. Only active
    when [model_cache] is set. *)
let touch_line ctx addr =
  if ctx.model_cache then begin
    let line = addr / Janus_vx.Cost.cache_line in
    if not (Hashtbl.mem ctx.warm line) then begin
      ctx.cycles <- ctx.cycles + Janus_vx.Cost.cache_miss;
      warm_line ctx addr
    end
  end
