(** Instruction semantics for VX64, shared by the plain VM interpreter
    and the DBM's code-cache executor.

    Memory accesses respect the context's transaction (speculative
    buffering) and observation hook (dependence profiling), so the STM
    and profiler interpose without duplicating the interpreter. *)

open Janus_vx

type control =
  | Fall            (* fall through to the next instruction *)
  | Goto of int     (* transfer to an application address *)
  | Stop            (* program exited or halted *)

exception Div_by_zero of int  (* rip *)

let addr_of_mem ctx (m : Operand.mem) =
  let base =
    match m.base with Some r -> Int64.to_int (Machine.get ctx r) | None -> 0
  in
  let index =
    match m.index with
    | Some r -> Int64.to_int (Machine.get ctx r) * m.scale
    | None -> 0
  in
  base + index + m.disp

(* Word-granularity speculative and observed access. *)

let raw_read ctx addr =
  (match ctx.Machine.observe with
   | Some f -> f Machine.Read ~addr ~bytes:8
   | None -> ());
  Machine.touch_line ctx addr;
  match ctx.Machine.txn with
  | Some t -> begin
      ctx.Machine.cycles <- ctx.Machine.cycles + Cost.stm_read;
      match Hashtbl.find_opt t.Machine.twrites addr with
      | Some v -> v
      | None ->
        let v = Memory.read_i64 ctx.Machine.mem addr in
        if not (Hashtbl.mem t.Machine.treads addr) then
          Hashtbl.replace t.Machine.treads addr v;
        v
    end
  | None -> Memory.read_i64 ctx.Machine.mem addr

let raw_write ctx addr v =
  (match ctx.Machine.observe with
   | Some f -> f Machine.Write ~addr ~bytes:8
   | None -> ());
  Machine.touch_line ctx addr;
  match ctx.Machine.txn with
  | Some t ->
    ctx.Machine.cycles <- ctx.Machine.cycles + Cost.stm_write;
    Hashtbl.replace t.Machine.twrites addr v
  | None -> Memory.write_i64 ctx.Machine.mem addr v

let read_f64 ctx addr = Int64.float_of_bits (raw_read ctx addr)
let write_f64 ctx addr v = raw_write ctx addr (Int64.bits_of_float v)

(* Operand access *)

let value ctx = function
  | Operand.Reg r -> Machine.get ctx r
  | Operand.Imm v -> v
  | Operand.Mem m -> raw_read ctx (addr_of_mem ctx m)

let store ctx op v =
  match op with
  | Operand.Reg r -> Machine.set ctx r v
  | Operand.Mem m -> raw_write ctx (addr_of_mem ctx m) v
  | Operand.Imm _ -> invalid_arg "Semantics.store: immediate destination"

let fop_value ctx lane = function
  | Operand.Freg r -> Machine.getf ctx r lane
  | Operand.Fmem m -> read_f64 ctx (addr_of_mem ctx m + (8 * lane))

(* Flags *)

(* Each setter computes the packed word and issues one store. *)

let set_flags_cmp ctx (a : int64) (b : int64) =
  ctx.Machine.flags <-
    Machine.pack_flags ~zf:(Int64.equal a b)
      ~lt:(Int64.compare a b < 0)
      ~ult:(Int64.unsigned_compare a b < 0)
      ~sf:(Int64.compare (Int64.sub a b) 0L < 0)

let set_flags_result ctx (v : int64) =
  let neg = Int64.compare v 0L < 0 in
  ctx.Machine.flags <-
    Machine.pack_flags ~zf:(Int64.equal v 0L) ~lt:neg ~ult:false ~sf:neg

let set_flags_fcmp ctx a b =
  if Float.is_nan a || Float.is_nan b then ctx.Machine.flags <- 0
  else begin
    let lt = a < b in
    ctx.Machine.flags <-
      Machine.pack_flags ~zf:(Float.equal a b) ~lt ~ult:lt ~sf:lt
  end

let eval_cond ctx c =
  let f = ctx.Machine.flags in
  Cond.eval
    ~zf:(f land Machine.flag_zf <> 0)
    ~lt:(f land Machine.flag_lt <> 0)
    ~ult:(f land Machine.flag_ult <> 0)
    ~sf:(f land Machine.flag_sf <> 0)
    c

let alu_op op (a : int64) (b : int64) =
  match op with
  | Insn.Add -> Int64.add a b
  | Insn.Sub -> Int64.sub a b
  | Insn.Imul -> Int64.mul a b
  | Insn.And -> Int64.logand a b
  | Insn.Or -> Int64.logor a b
  | Insn.Xor -> Int64.logxor a b
  | Insn.Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Insn.Shr -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Insn.Sar -> Int64.shift_right a (Int64.to_int b land 63)

let fbin_op op a b =
  match op with
  | Insn.Fadd -> a +. b
  | Insn.Fsub -> a -. b
  | Insn.Fmul -> a *. b
  | Insn.Fdiv -> a /. b
  | Insn.Fmin -> Float.min a b
  | Insn.Fmax -> Float.max a b

let push ctx v =
  let sp = Int64.sub (Machine.get ctx Reg.RSP) 8L in
  Machine.set ctx Reg.RSP sp;
  raw_write ctx (Int64.to_int sp) v

let pop ctx =
  let sp = Machine.get ctx Reg.RSP in
  let v = raw_read ctx (Int64.to_int sp) in
  Machine.set ctx Reg.RSP (Int64.add sp 8L);
  v

(* Syscalls *)

let syscall ctx n =
  if n = Insn.sys_exit then begin
    ctx.Machine.halted <- true;
    ctx.Machine.exit_code <- Int64.to_int (Machine.get ctx Reg.RDI);
    Stop
  end
  else if n = Insn.sys_write_int then begin
    Buffer.add_string ctx.Machine.out
      (Printf.sprintf "%Ld\n" (Machine.get ctx Reg.RDI));
    Fall
  end
  else if n = Insn.sys_write_float then begin
    Buffer.add_string ctx.Machine.out
      (Printf.sprintf "%.6g\n" (Machine.getf ctx (Reg.XMM 0) 0));
    Fall
  end
  else if n = Insn.sys_read_int then begin
    let v =
      if Queue.is_empty ctx.Machine.input then 0L
      else Queue.pop ctx.Machine.input
    in
    Machine.set ctx Reg.RAX v;
    Fall
  end
  else if n = Insn.sys_brk then begin
    let sz = Int64.to_int (Machine.get ctx Reg.RDI) in
    let old = ctx.Machine.brk in
    let aligned = (sz + 15) land lnot 15 in
    if old + aligned > Layout.heap_limit then raise (Memory.Fault (old + aligned));
    ctx.Machine.brk <- old + aligned;
    Machine.set ctx Reg.RAX (Int64.of_int old);
    Fall
  end
  else Fall  (* unknown syscalls are no-ops *)

(** Execute one instruction whose encoded length is [len], charging
    [cost] cycles (callers with a translated slot pass the cost they
    precomputed at translation time; {!exec} computes it here). Updates
    registers, flags, memory, cycle and instruction counters, and
    returns where control goes. Does NOT update [ctx.rip] — callers
    own instruction sequencing. *)
let exec_costed ctx insn ~len ~cost =
  ctx.Machine.cycles <- ctx.Machine.cycles + cost;
  ctx.Machine.icount <- ctx.Machine.icount + 1;
  let fallthrough = ctx.Machine.rip + len in
  match insn with
  | Insn.Nop -> Fall
  | Insn.Hlt ->
    ctx.Machine.halted <- true;
    Stop
  | Insn.Mov (dst, src) ->
    store ctx dst (value ctx src);
    Fall
  | Insn.Lea (r, m) ->
    Machine.set ctx r (Int64.of_int (addr_of_mem ctx m));
    Fall
  | Insn.Alu (op, dst, src) ->
    let v = alu_op op (value ctx dst) (value ctx src) in
    store ctx dst v;
    set_flags_result ctx v;
    Fall
  | Insn.Neg o ->
    let v = Int64.neg (value ctx o) in
    store ctx o v;
    set_flags_result ctx v;
    Fall
  | Insn.Not o ->
    store ctx o (Int64.lognot (value ctx o));
    Fall
  | Insn.Idiv o ->
    let d = value ctx o in
    if Int64.equal d 0L then raise (Div_by_zero ctx.Machine.rip);
    let a = Machine.get ctx Reg.RAX in
    Machine.set ctx Reg.RAX (Int64.div a d);
    Machine.set ctx Reg.RDX (Int64.rem a d);
    Fall
  | Insn.Cmp (a, b) ->
    set_flags_cmp ctx (value ctx a) (value ctx b);
    Fall
  | Insn.Test (a, b) ->
    set_flags_result ctx (Int64.logand (value ctx a) (value ctx b));
    Fall
  | Insn.Jmp (Insn.Direct a) -> Goto a
  | Insn.Jmp (Insn.Indirect o) -> Goto (Int64.to_int (value ctx o))
  | Insn.Jcc (c, a) -> if eval_cond ctx c then Goto a else Fall
  | Insn.Call (Insn.Direct a) ->
    push ctx (Int64.of_int fallthrough);
    Goto a
  | Insn.Call (Insn.Indirect o) ->
    let target = Int64.to_int (value ctx o) in
    push ctx (Int64.of_int fallthrough);
    Goto target
  | Insn.Ret -> Goto (Int64.to_int (pop ctx))
  | Insn.Push o ->
    push ctx (value ctx o);
    Fall
  | Insn.Pop o ->
    let v = pop ctx in
    store ctx o v;
    Fall
  | Insn.Cmov (c, r, src) ->
    if eval_cond ctx c then Machine.set ctx r (value ctx src);
    Fall
  | Insn.Fmov (w, dst, src) ->
    let n = Insn.lanes w in
    (match dst with
     | Operand.Freg r ->
       for l = 0 to n - 1 do
         Machine.setf ctx r l (fop_value ctx l src)
       done
     | Operand.Fmem m ->
       let a = addr_of_mem ctx m in
       for l = 0 to n - 1 do
         write_f64 ctx (a + (8 * l)) (fop_value ctx l src)
       done);
    Fall
  | Insn.Fbin (w, op, d, src) ->
    for l = 0 to Insn.lanes w - 1 do
      Machine.setf ctx d l (fbin_op op (Machine.getf ctx d l) (fop_value ctx l src))
    done;
    Fall
  | Insn.Fsqrt (w, d, src) ->
    for l = 0 to Insn.lanes w - 1 do
      Machine.setf ctx d l (Float.sqrt (fop_value ctx l src))
    done;
    Fall
  | Insn.Fbcast (w, d, src) ->
    let v = fop_value ctx 0 src in
    for l = 0 to Insn.lanes w - 1 do
      Machine.setf ctx d l v
    done;
    Fall
  | Insn.Fcmp (a, b) ->
    set_flags_fcmp ctx (Machine.getf ctx a 0) (fop_value ctx 0 b);
    Fall
  | Insn.Cvtsi2sd (d, src) ->
    Machine.setf ctx d 0 (Int64.to_float (value ctx src));
    Fall
  | Insn.Cvtsd2si (d, src) ->
    Machine.set ctx d (Int64.of_float (fop_value ctx 0 src));
    Fall
  | Insn.Syscall n -> syscall ctx n
  | Insn.Prefetch m ->
    Machine.warm_line ctx (addr_of_mem ctx m);
    Fall

let exec ctx insn ~len = exec_costed ctx insn ~len ~cost:(Cost.of_insn insn)
