(** Instruction semantics for VX64, shared by the plain VM interpreter
    and the DBM's code-cache executor.

    Memory accesses respect the context's transaction (speculative
    buffering, §II-E2) and observation hook (dependence profiling), so
    the STM and profiler interpose without duplicating the interpreter. *)

open Janus_vx

(** Where control goes after one instruction. *)
type control =
  | Fall          (** fall through to the next instruction *)
  | Goto of int   (** transfer to an application address *)
  | Stop          (** the program exited or halted *)

exception Div_by_zero of int  (** rip of the faulting division *)

(** Effective address of a memory operand in a context. *)
val addr_of_mem : Machine.t -> Operand.mem -> int

(** 64-bit load/store honouring the installed transaction (buffered)
    and observer (recorded); exposed for the runtime and tests. *)
val raw_read : Machine.t -> int -> int64
val raw_write : Machine.t -> int -> int64 -> unit

val value : Machine.t -> Operand.t -> int64

(** Store to a register or memory destination (immediates are
    invalid); exposed for the DBM's fused-pair executors. *)
val store : Machine.t -> Operand.t -> int64 -> unit

val eval_cond : Machine.t -> Cond.t -> bool

(** The ALU operation itself, and the flag effects of a compare /
    flag-setting result; exposed for the DBM's fused-pair executors,
    which must produce bit-identical flag words. *)
val alu_op : Insn.alu -> int64 -> int64 -> int64

val set_flags_cmp : Machine.t -> int64 -> int64 -> unit
val set_flags_result : Machine.t -> int64 -> unit
val push : Machine.t -> int64 -> unit
val pop : Machine.t -> int64

(** Execute one instruction whose encoded length is [len]: updates
    registers, flags, memory and the cycle/instruction counters, and
    returns where control goes. Does {e not} advance [ctx.rip] —
    callers own instruction sequencing. *)
val exec : Machine.t -> Insn.t -> len:int -> control

(** {!exec} with the instruction's {!Cost.of_insn} precomputed by the
    caller (translated slots compute it once at translation time
    instead of re-matching on every execution). [cost] must equal
    [Cost.of_insn insn] for the cycle model to stay exact. *)
val exec_costed : Machine.t -> Insn.t -> len:int -> cost:int -> control
