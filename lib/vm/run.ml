(** The plain VM runner — "native execution" of a JX image, without any
    dynamic modification. This is the baseline all Janus configurations
    are normalised against, and the semantic oracle for tests.

    Also implements the [__par_for] intrinsic used by the guest
    compiler's auto-parallelisation mode (Fig. 11's gcc/icc bars): the
    compiler-parallelised runtime uses the same multicore cost model as
    Janus, so the comparison is apples-to-apples. *)

open Janus_vx

exception Out_of_fuel
exception Bad_pc of int

type result = {
  exit_code : int;
  output : string;
  cycles : int;
  icount : int;
  mem_digest : string;
}

(* Digest of the architecturally visible final memory: globals (data +
   bss) and the allocated prefix of the heap. Stacks and TLS are
   thread-private scratch and excluded, so the digest is directly
   comparable between native, DBM-sequential and parallel executions
   of one program. Computed once at end of run — never on a hot path. *)
let mem_digest (ctx : Machine.t) =
  let region name =
    match Memory.region_by_name ctx.Machine.mem name with
    | Some r ->
      Memory.materialize r r.Memory.size;
      Bytes.unsafe_to_string r.Memory.bytes
    | None -> ""
  in
  let heap =
    match Memory.region_by_name ctx.Machine.mem "heap" with
    | Some r ->
      let used = max 0 (min r.Memory.size (ctx.Machine.brk - r.Memory.start)) in
      Memory.materialize r used;
      Bytes.sub_string r.Memory.bytes 0 used
    | None -> ""
  in
  Digest.to_hex (Digest.string (region "data" ^ region "bss" ^ heap))

(* Return-address sentinel: no valid code lives at address 0. *)
let sentinel = 0

let default_fuel = 200_000_000

(** Execute starting at [ctx.rip] until the program halts or control
    returns to the sentinel address.

    The loop is allocation-free on app-text and library code: the
    instruction, its length and its precomputed cost come from the
    program's flat side tables, and the [__par_for] intrinsic test is
    one compare against the address resolved at load. Only genuinely
    cold addresses (unresolved PLT slots, bad pcs) fall back to
    {!Program.fetch}. *)
let rec run_from prog ctx ~fuel =
  let remaining = ref fuel in
  let continue = ref true in
  let text_insn = prog.Program.text_insn in
  let text_len = prog.Program.text_len in
  let text_cost = prog.Program.text_cost in
  let text_n = Array.length text_len in
  let lib_insn = prog.Program.lib_insn in
  let lib_len = prog.Program.lib_len in
  let lib_cost = prog.Program.lib_cost in
  let lib_n = Array.length lib_len in
  while !continue && not ctx.Machine.halted do
    if !remaining <= 0 then raise Out_of_fuel;
    decr remaining;
    let addr = ctx.Machine.rip in
    let toff = addr - Layout.text_base in
    let loff = addr - Layout.lib_base in
    if toff >= 0 && toff < text_n && Array.unsafe_get text_len toff <> 0
    then begin
      let len = Array.unsafe_get text_len toff in
      match
        Semantics.exec_costed ctx
          (Array.unsafe_get text_insn toff)
          ~len
          ~cost:(Array.unsafe_get text_cost toff)
      with
      | Semantics.Fall -> ctx.Machine.rip <- addr + len
      | Semantics.Goto a ->
        if a = sentinel then continue := false else ctx.Machine.rip <- a
      | Semantics.Stop -> continue := false
    end
    else if loff >= 0 && loff < lib_n && Array.unsafe_get lib_len loff <> 0
    then begin
      let len = Array.unsafe_get lib_len loff in
      match
        Semantics.exec_costed ctx
          (Array.unsafe_get lib_insn loff)
          ~len
          ~cost:(Array.unsafe_get lib_cost loff)
      with
      | Semantics.Fall -> ctx.Machine.rip <- addr + len
      | Semantics.Goto a ->
        if a = sentinel then continue := false else ctx.Machine.rip <- a
      | Semantics.Stop -> continue := false
    end
    else if addr = prog.Program.par_for_addr then begin
      (* intrinsic: run the compiler-parallelised loop, then return to
         the caller via the address the call pushed *)
      par_for prog ctx ~fuel:!remaining;
      ctx.Machine.rip <- Int64.to_int (Semantics.pop ctx)
    end
    else begin
      match Program.fetch prog addr with
      | None -> raise (Bad_pc addr)
      | Some (insn, len) -> (
        match Semantics.exec ctx insn ~len with
        | Semantics.Fall -> ctx.Machine.rip <- addr + len
        | Semantics.Goto a ->
          if a = sentinel then continue := false else ctx.Machine.rip <- a
        | Semantics.Stop -> continue := false)
    end
  done

(** Run the function at [addr] to completion in [ctx] (pushes a
    sentinel return address). *)
and call_function prog ctx addr ~fuel =
  Semantics.push ctx (Int64.of_int sentinel);
  ctx.Machine.rip <- addr;
  run_from prog ctx ~fuel

(* __par_for(fn=rdi, lo=rsi, hi=rdx, nthreads=rcx): execute
   fn(lo_t, hi_t) on each virtual thread over a chunked partition. *)
and par_for prog ctx ~fuel =
  let fn = Int64.to_int (Machine.get ctx Reg.RDI) in
  let lo = Int64.to_int (Machine.get ctx Reg.RSI) in
  let hi = Int64.to_int (Machine.get ctx Reg.RDX) in
  let threads = max 1 (Int64.to_int (Machine.get ctx Reg.RCX)) in
  let total = max 0 (hi - lo) in
  let threads = min threads (max 1 total) in
  Program.add_thread_regions prog ~threads;
  let chunk = (total + threads - 1) / threads in
  let max_child = ref 0 in
  for t = 0 to threads - 1 do
    let tlo = lo + (t * chunk) in
    let thi = min hi (tlo + chunk) in
    if tlo < thi then begin
      let child = Machine.fork ctx in
      Machine.set child Reg.RSP (Int64.of_int (Layout.tstack_top t - 64));
      Machine.set child Reg.RDI (Int64.of_int tlo);
      Machine.set child Reg.RSI (Int64.of_int thi);
      call_function prog child fn ~fuel;
      ctx.Machine.icount <- ctx.Machine.icount + child.Machine.icount;
      if child.Machine.cycles > !max_child then
        max_child := child.Machine.cycles
    end
  done;
  ctx.Machine.cycles <-
    ctx.Machine.cycles + Cost.loop_init_base
    + (threads * (Cost.thread_signal + Cost.thread_context_copy))
    + !max_child + Cost.loop_finish_base
    + (threads * Cost.loop_finish_per_thread)

let fresh_context prog =
  let ctx = Machine.create prog.Program.mem in
  Machine.set ctx Reg.RSP (Int64.of_int (Layout.stack_top - 64));
  ctx.Machine.rip <- prog.Program.image.Image.entry;
  ctx

(** Load and run an image natively. *)
let run ?(fuel = default_fuel) ?(input = []) ?(model_cache = false) image =
  let prog = Program.load image in
  let ctx = fresh_context prog in
  ctx.Machine.model_cache <- model_cache;
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  run_from prog ctx ~fuel;
  {
    exit_code = ctx.Machine.exit_code;
    output = Buffer.contents ctx.Machine.out;
    cycles = ctx.Machine.cycles;
    icount = ctx.Machine.icount;
    mem_digest = mem_digest ctx;
  }
