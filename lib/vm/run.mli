(** The plain VM runner — "native execution" of a JX image, without any
    dynamic modification. This is the baseline all Janus configurations
    normalise against, and the semantic oracle for tests. Also
    implements the [__par_for] intrinsic used by compiler-parallelised
    binaries (Fig. 11). *)

exception Out_of_fuel
exception Bad_pc of int

type result = {
  exit_code : int;
  output : string;
  cycles : int;
  icount : int;
  mem_digest : string;
      (** digest of the final globals + allocated heap (see
          {!mem_digest}) *)
}

(** Digest of the architecturally visible final memory of a context:
    data + bss + the allocated heap prefix. Stacks and TLS are
    excluded, so the digest is comparable across execution backends
    (native, DBM, parallel) for one program — the memory half of a
    differential oracle's "same final state" check. *)
val mem_digest : Machine.t -> string

(** The sentinel return address used by {!call_function}. *)
val sentinel : int

val default_fuel : int

(** Execute from [ctx.rip] until the program halts or control returns
    to the sentinel. *)
val run_from : Program.t -> Machine.t -> fuel:int -> unit

(** Run the function at an address to completion in [ctx]. *)
val call_function : Program.t -> Machine.t -> int -> fuel:int -> unit

(** The [__par_for] intrinsic: distribute [fn(lo, hi)] chunks over
    virtual threads with the same multicore cost model Janus uses. *)
val par_for : Program.t -> Machine.t -> fuel:int -> unit

(** A fresh main-thread context at the image's entry point. *)
val fresh_context : Program.t -> Machine.t

(** Load and run an image natively. *)
val run :
  ?fuel:int -> ?input:int64 list -> ?model_cache:bool -> Janus_vx.Image.t ->
  result
