(** A VX64 machine context: register file, flags, instruction pointer
    and cycle counters. One context per virtual hardware thread; all
    contexts of a run share one {!Memory.t} and output buffer.

    Hot state is flat for cache-consciousness: the four condition flags
    live packed in one mutable int and the FP register file is a single
    unboxed [float array] ([fp_count * 4] lanes), so forks, checkpoints
    and rollbacks are single blits. *)

open Janus_vx

(** {2 Packed condition flags} *)

(** Bit masks within the packed flags word: zero (last compare equal /
    last result zero), signed less-than, unsigned less-than, and the
    sign of the last result. *)

val flag_zf : int
val flag_lt : int
val flag_ult : int
val flag_sf : int

(** Pack the four flag booleans into a flags word. *)
val pack_flags : zf:bool -> lt:bool -> ult:bool -> sf:bool -> int

(** A word-based software transaction (§II-E2): while installed,
    memory accesses buffer stores and record read versions. The
    checkpoint covers registers, FP registers, rip, condition flags
    and the heap bump pointer, so a rollback restores the complete
    architectural context. *)
type txn = {
  treads : (int, int64) Hashtbl.t;   (** address -> value observed *)
  twrites : (int, int64) Hashtbl.t;  (** address -> buffered value *)
  mutable taborted : bool;
  checkpoint_regs : int64 array;
  checkpoint_fregs : float array;
  checkpoint_rip : int;
  checkpoint_flags : int;
  checkpoint_brk : int;
}

type t = {
  regs : int64 array;          (** indexed by {!Reg.gp_index} *)
  fregs : float array;         (** flat: register r, lane l at r*4+l *)
  mutable flags : int;         (** packed {!flag_zf}/{!flag_lt}/... bits *)
  mutable rip : int;
  mem : Memory.t;
  mutable cycles : int;        (** modelled cycles *)
  mutable icount : int;        (** retired instructions *)
  mutable halted : bool;
  mutable exit_code : int;
  out : Buffer.t;              (** program output (shared) *)
  input : int64 Queue.t;       (** values returned by sys_read_int *)
  mutable txn : txn option;    (** speculative access buffering *)
  mutable observe : (rw -> addr:int -> bytes:int -> unit) option;
      (** memory-access hook for the dependence profiler *)
  mutable brk : int;           (** heap bump pointer *)
  mutable model_cache : bool;
      (** charge {!Cost.cache_miss} on cold-line accesses *)
  warm : (int, unit) Hashtbl.t;  (** warm cache lines (line numbers) *)
  warm_fifo : int Queue.t;       (** insertion order, for eviction *)
}

and rw = Read | Write

val create : ?out:Buffer.t -> Memory.t -> t

(** A worker context sharing memory, output and heap state with
    [parent] but owning its registers, flags and counters. *)
val fork : t -> t

val get : t -> Reg.gp -> int64
val set : t -> Reg.gp -> int64 -> unit
val getf : t -> Reg.fp -> int -> float
val setf : t -> Reg.fp -> int -> float -> unit

(** Checkpoint the architectural context (registers, fregs, rip, flags,
    brk) and install a transaction. *)
val start_txn : t -> txn

(** Restore the checkpointed context and drop the transaction. *)
val rollback : t -> txn -> unit

(** Drop the transaction, keeping the current context. *)
val end_txn : t -> unit

(** {2 Data-cache warmth (prefetch extension)} *)

(** Mark the line containing the address warm (FIFO eviction at
    {!Cost.cache_lines} capacity). What a [Prefetch] hint does. *)
val warm_line : t -> int -> unit

(** Charge a miss if the address's line is cold, then warm it. No-op
    unless [model_cache] is set. *)
val touch_line : t -> int -> unit
