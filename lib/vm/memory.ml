(** Region-based guest memory.

    The address space is a small set of non-overlapping regions (text,
    data, bss, heap, library data, one stack and one TLS block per
    thread). Loads and stores fault outside any region, which is how
    the VM catches wild accesses from miscompiled or mis-rewritten
    code.

    Two properties make this fast enough to sit under every
    interpreted instruction:

    - {b Page-granular lookup}: a flat table indexed by [addr lsr 16]
      maps each 64 KiB page to the region covering it, built
      incrementally by {!add_region}. The fixed {!Janus_vx.Layout}
      keeps every region alone on its pages, so a lookup is one load +
      two compares; a shared page (possible only for layouts not
      produced by [Layout]) falls back to a linear walk with exactly
      the list representation's semantics.

    - {b Lazily materialised backing}: a region's architectural size
      (what bounds checks and faults see) is fixed at creation, but
      its zero-filled backing bytes grow on first touch. The 16 MiB
      heap no longer costs a 16 MiB memset per program load — untouched
      pages are never allocated or zeroed, and the prefix that is
      materialised is identical (zeros) to the eager representation. *)

exception Fault of int  (* faulting guest address *)

type region = {
  start : int;
  size : int;              (* architectural size: bounds and faults *)
  mutable bytes : Bytes.t; (* materialised zero-filled prefix, <= size *)
  name : string;
}

let page_bits = 16
let chunk = 1 lsl page_bits  (* materialisation granule *)

(* sentinel for unmapped pages: no address satisfies its bounds *)
let no_region = { start = -1; size = 0; bytes = Bytes.empty; name = "" }

type t = {
  mutable regions : region list;
  mutable pages : region array;  (* page number -> covering region *)
}

let create () = { regions = []; pages = [||] }

let grow_pages t wanted =
  if wanted > Array.length t.pages then begin
    let n = max wanted (max 64 (2 * Array.length t.pages)) in
    let pages = Array.make n no_region in
    Array.blit t.pages 0 pages 0 (Array.length t.pages);
    t.pages <- pages
  end

let add_region t ~name ~start ~size =
  let r = { start; size; bytes = Bytes.empty; name } in
  t.regions <- r :: t.regions;
  if size > 0 && start >= 0 then begin
    let first = start lsr page_bits in
    let last = (start + size - 1) lsr page_bits in
    grow_pages t (last + 1);
    for p = first to last do
      (* last writer wins on a shared page; the loser is still found by
         the linear-walk fallback *)
      t.pages.(p) <- r
    done
  end;
  r

(** Grow [r]'s backing so its first [upto] bytes are materialised
    (zero-filled); [upto] must be within the architectural size. *)
let materialize r upto =
  if upto > Bytes.length r.bytes then begin
    let target =
      min r.size (max upto (max chunk (2 * Bytes.length r.bytes)))
    in
    let nb = Bytes.make target '\000' in
    Bytes.blit r.bytes 0 nb 0 (Bytes.length r.bytes);
    r.bytes <- nb
  end

(* linear fallback: exactly the pre-page-table behaviour *)
let rec find_region regions addr =
  match regions with
  | [] -> raise (Fault addr)
  | r :: tl ->
    if addr >= r.start && addr - r.start < r.size then r
    else find_region tl addr

let region_of t addr =
  let p = addr lsr page_bits in  (* logical shift: negatives go slow *)
  if p < Array.length t.pages then begin
    let r = Array.unsafe_get t.pages p in
    if addr >= r.start && addr - r.start < r.size then r
    else find_region t.regions addr
  end
  else find_region t.regions addr

let region_by_name t name =
  List.find_opt (fun r -> String.equal r.name name) t.regions

(** [check t addr n] faults unless [addr..addr+n-1] lies in one region. *)
let check t addr n =
  let r = region_of t addr in
  if addr + n > r.start + r.size then raise (Fault (addr + n - 1))

let read_u8 t addr =
  let r = region_of t addr in
  let off = addr - r.start in
  materialize r (off + 1);
  Char.code (Bytes.get r.bytes off)

let write_u8 t addr v =
  let r = region_of t addr in
  let off = addr - r.start in
  materialize r (off + 1);
  Bytes.set r.bytes off (Char.chr (v land 0xff))

(* The 64-bit accessors are the interpreter's hottest memory path: one
   page-table load, one bounds compare against the materialised prefix,
   then the access. Anything else — negative offset, unmaterialised
   page, region tail, unmapped address — takes the slow path, which
   reproduces the original two-step semantics exactly (Fault addr when
   no region contains addr, Fault (addr+7) when the word hangs over a
   region's end). *)

let read_i64_slow t addr =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + 8 <= r.size then begin
    materialize r (off + 8);
    Bytes.get_int64_le r.bytes off
  end
  else raise (Fault (addr + 7))

let read_i64 t addr =
  let p = addr lsr page_bits in
  if p < Array.length t.pages then begin
    let r = Array.unsafe_get t.pages p in
    let off = addr - r.start in
    if off >= 0 && off + 8 <= Bytes.length r.bytes then
      Bytes.get_int64_le r.bytes off
    else read_i64_slow t addr
  end
  else read_i64_slow t addr

let write_i64_slow t addr v =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + 8 <= r.size then begin
    materialize r (off + 8);
    Bytes.set_int64_le r.bytes off v
  end
  else raise (Fault (addr + 7))

let write_i64 t addr v =
  let p = addr lsr page_bits in
  if p < Array.length t.pages then begin
    let r = Array.unsafe_get t.pages p in
    let off = addr - r.start in
    if off >= 0 && off + 8 <= Bytes.length r.bytes then
      Bytes.set_int64_le r.bytes off v
    else write_i64_slow t addr v
  end
  else write_i64_slow t addr v

let read_f64 t addr = Int64.float_of_bits (read_i64 t addr)
let write_f64 t addr v = write_i64 t addr (Int64.bits_of_float v)

let blit t ~addr src =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + Bytes.length src > r.size then
    raise (Fault (addr + Bytes.length src - 1));
  materialize r (off + Bytes.length src);
  Bytes.blit src 0 r.bytes off (Bytes.length src)

(** Snapshot the contents of [addr..addr+n-1] (for test oracles). *)
let snapshot t addr n =
  let r = region_of t addr in
  let off = addr - r.start in
  if off + n > r.size then raise (Fault (addr + n - 1));
  materialize r (off + n);
  Bytes.sub r.bytes off n
