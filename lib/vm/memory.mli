(** Region-based guest memory: the address space is a small set of
    non-overlapping regions (text, data, bss, heap, library data, one
    stack and one TLS block per thread). Accesses outside every region
    fault, catching wild pointers from miscompiled or mis-rewritten
    code. *)

exception Fault of int  (** faulting guest address *)

type region = {
  start : int;
  size : int;              (** architectural size: bounds and faults *)
  mutable bytes : Bytes.t; (** materialised zero-filled prefix, <= size *)
  name : string;
}

type t

val create : unit -> t

(** Add a region; overlap checking is the caller's responsibility
    (regions come from the fixed {!Janus_vx.Layout}). *)
val add_region : t -> name:string -> start:int -> size:int -> region

val region_by_name : t -> string -> region option

(** Grow a region's backing so its first [n] bytes are materialised
    (zero-filled); for callers that read [region.bytes] directly.
    [n] must not exceed the architectural size. *)
val materialize : region -> int -> unit

(** @raise Fault unless the whole range lies inside one region. *)
val check : t -> int -> int -> unit

val read_u8 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val read_i64 : t -> int -> int64
val write_i64 : t -> int -> int64 -> unit
val read_f64 : t -> int -> float
val write_f64 : t -> int -> float -> unit

(** Copy [src] into guest memory at [addr]. *)
val blit : t -> addr:int -> bytes -> unit

(** Copy [n] guest bytes out (for test oracles). *)
val snapshot : t -> int -> int -> bytes
