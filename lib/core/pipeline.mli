(** The staged pipeline of Fig. 1(a) as explicit, typed stages —
    [compile -> analyse -> profile -> select -> schedule -> execute] —
    each returning a reusable artifact, plus a content-keyed artifact
    store that lets configuration sweeps share the static-side work.

    Every stage is keyed by the hash of the image bytes (for [compile],
    of the source text) combined with {e only the configuration fields
    that stage actually reads}, so e.g. all four Fig. 7 configurations
    of one benchmark share a single static analysis, and all eight
    Fig. 9 thread counts share analysis, profiles and schedule — thread
    count is an execute-stage parameter and never enters a static key.

    Artifacts are deterministic functions of their key (loop ids and
    symbolic-atom ids restart per analysis), so a cache hit returns
    exactly the value a recomputation would produce: results are
    bit-identical between cold and warm runs, and between sequential
    and domain-parallel sweeps. Artifacts are immutable once
    constructed and the store is mutex-guarded, so one store can be
    shared by pipeline instances running on separate domains.

    The execute stage ({!Janus.run_parallel}) is the measurement and is
    never cached. *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Profiler = Janus_profile.Profiler
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs

(** Pipeline configuration (re-exported as [Janus.config]); see
    {!Janus.config} for field documentation. *)
type config = {
  threads : int;
  use_profile : bool;
  use_checks : bool;
  use_doacross : bool;
  cov_threshold : float;
  trip_threshold : float;
  work_threshold : float;
  force_policy : Desc.policy option;
  stm_everywhere : bool;
  prefetch : bool;
  fission : bool;
  model_cache : bool;
  verify : bool;
  fuel : int;
  trace : bool;
  adapt : bool;
}

val config :
  ?threads:int ->
  ?use_profile:bool ->
  ?use_checks:bool ->
  ?use_doacross:bool ->
  ?cov_threshold:float ->
  ?trip_threshold:float ->
  ?work_threshold:float ->
  ?force_policy:Desc.policy ->
  ?stm_everywhere:bool ->
  ?prefetch:bool ->
  ?fission:bool ->
  ?model_cache:bool ->
  ?verify:bool ->
  ?fuel:int ->
  ?trace:bool ->
  ?adapt:bool ->
  unit ->
  config

(** {1 The artifact store} *)

type store

(** [store ()] makes an empty artifact store. [enabled:false] makes a
    store that never caches (every lookup recomputes) — the [--no-cache]
    backend, useful to measure cold-pipeline cost. *)
val store : ?enabled:bool -> unit -> store

(** The process-wide store the [?store] parameters default to, so
    repeated pipeline runs in one process share static artifacts unless
    a caller opts out. *)
val default_store : store

(** Drop every cached artifact (counters are kept). *)
val clear : store -> unit

type cache_stats = { hits : int; misses : int }

(** Lifetime hit/miss counters across all artifact kinds. A concurrent
    duplicate computation of the same key counts as a miss for each
    computing domain (the store never blocks a reader on another
    domain's computation; identical values make the race benign). *)
val cache_stats : store -> cache_stats

(** Publish the store's counters into a metrics registry as
    [pipeline.cache.hits] / [pipeline.cache.misses] plus per-kind
    [pipeline.cache.<kind>.{hits,misses}] counters. *)
val publish_metrics : store -> Obs.t -> unit

(** {1 Stages}

    Each stage consumes the previous stage's artifact and returns its
    own; [?store] (default {!default_store}) memoises the result under
    the stage's content key. *)

(** Stage 0 — guest compilation: source text to JX image.
    Key: source digest + every {!Jcc.options} field. *)
val compile : ?store:store -> ?options:Jcc.options -> string -> Janus_vx.Image.t

(** Stage 1 — static analysis: CFG recovery, loop forest, per-loop
    classification. Key: image digest. *)
val analyse : ?store:store -> Janus_vx.Image.t -> Analysis.t

(** Stage 2 — training-input profiling. Returns [(coverage, deps)]
    with each side present only when the configuration asks for it
    ([use_profile] / [use_checks]). Key: image digest + training input
    + fuel (the only config fields the profiler reads). *)
val profile :
  ?store:store ->
  cfg:config ->
  train_input:int64 list ->
  Janus_vx.Image.t ->
  Analysis.t ->
  Profiler.coverage option * Profiler.deps option

(** Loop selection outcome (re-exported as [Janus.selection]). *)
type selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;
}

(** Stage 3 — loop selection: eligibility and profitability filters
    over the analysis given the profiles. Pure and cheap — never
    cached. *)
val select :
  cfg:config ->
  Analysis.t ->
  coverage:Profiler.coverage option ->
  deps:Profiler.deps option ->
  selection

(** Stage 4 — rewrite-schedule generation for the selected loops.
    Key: image digest + training input + fuel + the selection-relevant
    config fields ([use_profile], [use_checks], [use_doacross], the
    three thresholds, [force_policy]) + [prefetch] + [fission] —
    everything the selection and the rule generator read, so equal keys
    imply an equal schedule. *)
val schedule :
  ?store:store ->
  cfg:config ->
  train_input:int64 list ->
  Janus_vx.Image.t ->
  Analysis.t ->
  selection ->
  Schedule.t
