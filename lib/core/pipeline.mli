(** The staged pipeline of Fig. 1(a) as explicit, typed stages —
    [compile -> analyse -> profile -> select -> schedule -> execute] —
    each returning a reusable artifact, plus a content-keyed artifact
    store that lets configuration sweeps share the static-side work.

    Every stage is keyed by the hash of the image bytes (for [compile],
    of the source text) combined with {e only the configuration fields
    that stage actually reads}, so e.g. all four Fig. 7 configurations
    of one benchmark share a single static analysis, and all eight
    Fig. 9 thread counts share analysis, profiles and schedule — thread
    count is an execute-stage parameter and never enters a static key.

    Artifacts are deterministic functions of their key (loop ids and
    symbolic-atom ids restart per analysis), so a cache hit returns
    exactly the value a recomputation would produce: results are
    bit-identical between cold and warm runs, and between sequential
    and domain-parallel sweeps. Artifacts are immutable once
    constructed and the store is mutex-guarded, so one store can be
    shared by pipeline instances running on separate domains.

    The execute stage ({!Janus.run_parallel}) is the measurement and is
    never cached. *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Profiler = Janus_profile.Profiler
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs

(** Pipeline configuration (re-exported as [Janus.config]); see
    {!Janus.config} for field documentation. *)
type config = {
  threads : int;
  use_profile : bool;
  use_checks : bool;
  use_doacross : bool;
  cov_threshold : float;
  trip_threshold : float;
  work_threshold : float;
  force_policy : Desc.policy option;
  stm_everywhere : bool;
  prefetch : bool;
  fission : bool;
  model_cache : bool;
  verify : bool;
  fuel : int;
  trace : bool;
  adapt : bool;
  fuse : bool;
}

(** Process-wide default for {!field:config.fuse} (the [--no-fuse] kill
    switch sets it to [false]). Execute-stage only: never part of a
    selection key, so toggling it cannot perturb cached schedules. *)
val fuse_default : bool ref

val config :
  ?threads:int ->
  ?use_profile:bool ->
  ?use_checks:bool ->
  ?use_doacross:bool ->
  ?cov_threshold:float ->
  ?trip_threshold:float ->
  ?work_threshold:float ->
  ?force_policy:Desc.policy ->
  ?stm_everywhere:bool ->
  ?prefetch:bool ->
  ?fission:bool ->
  ?model_cache:bool ->
  ?verify:bool ->
  ?fuel:int ->
  ?trace:bool ->
  ?adapt:bool ->
  ?fuse:bool ->
  unit ->
  config

(** {1 Profile evidence}

    Aggregated fleet evidence ({!Janus_pgo.Pgo} builds it from a
    persistent profile store) substituted for the one-shot training
    profile: the select stage consumes the merged coverage and
    dependence verdicts instead of re-profiling, and the schedule key
    gains the store {e generation} ([ev_generation], a content digest
    of the merged profile), so warm schedule caches invalidate exactly
    when the evidence shifts. With no evidence attached, keys and
    artifacts are byte-identical to a pgo-free build. *)
type evidence = {
  ev_coverage : Profiler.coverage option;
      (** invocation-weighted coverage summed over the fleet's
          profiler runs *)
  ev_deps : Profiler.deps option;
      (** pessimistic dependence join: a loop is flagged when {e any}
          run observed a cross-iteration dependence (profiled, sampled,
          or proven by a failed runtime bounds check) *)
  ev_suspect : int list;
      (** loops whose aggregated governor history shows demotions or
          failed checks — {!Janus.run_parallel} warm-starts these in
          the governor's probation state *)
  ev_generation : string;
      (** content digest of the merged profile: the schedule-key
          component that invalidates warm caches when evidence shifts *)
}

(** {1 The artifact store} *)

type store

(** [store ()] makes an empty artifact store. [enabled:false] makes a
    store that never caches (every lookup recomputes) — the [--no-cache]
    backend, useful to measure cold-pipeline cost.

    [dir] adds a persistent layer under that directory (created if
    missing): every artifact is also published on disk as a versioned,
    checksummed, content-keyed entry, and a memory miss consults the
    directory before recomputing — so a fresh process answers a binary
    it has seen in {e any} earlier run from the warm store. Writes are
    atomic (temp file + rename), so concurrent processes sharing one
    directory never observe a torn entry; loads are corruption-tolerant
    — a truncated, tampered or stale-version entry is a miss (counted
    under disk errors where malformed), never a crash, and is
    overwritten by the recomputed artifact. A persistent hit is
    byte-identical to a recomputation, so cold and warm runs produce
    identical artifacts.

    [prune_age]/[prune_bytes] bound the persistent directory: after
    each publish the oldest entries (by mtime) beyond the age or byte
    budget are deleted — except entries this process itself wrote,
    which stay until the next run's prune (deleting an artifact the
    live process just published would defeat the warm-store
    guarantee). *)
val store :
  ?enabled:bool -> ?dir:string -> ?prune_age:int -> ?prune_bytes:int ->
  unit -> store

(** The persistent layer's directory, if the store has one. *)
val store_dir : store -> string option

(** [prune_dir dir ~exts] deletes persisted entries under [dir] whose
    extension is in [exts] (e.g. [[".jart"; ".jprof"]]), oldest mtime
    first: first everything older than [max_age] seconds, then — while
    the survivors still exceed [max_bytes] — the oldest of them.
    [protect] exempts paths (the live process's own writes). Ties break
    on the file name, so the deletion order is deterministic. Returns
    the number of files deleted; unreadable files are skipped. *)
val prune_dir :
  ?max_age:int ->
  ?max_bytes:int ->
  ?protect:(string -> bool) ->
  exts:string list ->
  string ->
  int

(** Prune the store's persistent directory now (no-op without one),
    protecting entries written by this process. Limits default to the
    store's configured [prune_age]/[prune_bytes]. *)
val prune_store : ?max_age:int -> ?max_bytes:int -> store -> int

(** The process-wide store the [?store] parameters default to, so
    repeated pipeline runs in one process share static artifacts unless
    a caller opts out. *)
val default_store : store

(** Drop every cached artifact from the {e memory} layer (counters and
    on-disk entries are kept — a later lookup may still hit the
    persistent layer). *)
val clear : store -> unit

type cache_stats = { hits : int; misses : int }

(** Lifetime hit/miss counters across all artifact kinds; [hits] counts
    memory and persistent-layer hits together, [misses] counts actual
    recomputations. A concurrent duplicate computation of the same key
    counts as a miss for each computing domain (the store never blocks
    a reader on another domain's computation; identical values make the
    race benign). *)
val cache_stats : store -> cache_stats

(** Per-kind counter breakdown, memory and disk separated. *)
type kind_stat = {
  k_kind : string;        (** image | analysis | coverage | deps | schedule *)
  k_mem_hits : int;
  k_disk_hits : int;
  k_misses : int;
  k_disk_errors : int;    (** malformed entries seen, failed publishes *)
}

val kind_stats : store -> kind_stat list

(** Publish the store's counters into a metrics registry as
    [pipeline.cache.{hits,misses}], [pipeline.cache.disk.{hits,errors}]
    plus per-kind [pipeline.cache.<kind>.{hits,misses}] and
    [pipeline.cache.<kind>.disk.{hits,errors}] counters. *)
val publish_metrics : store -> Obs.t -> unit

(** {1 Stages}

    Each stage consumes the previous stage's artifact and returns its
    own; [?store] (default {!default_store}) memoises the result under
    the stage's content key. *)

(** Stage 0 — guest compilation: source text to JX image.
    Key: source digest + every {!Jcc.options} field. *)
val compile : ?store:store -> ?options:Jcc.options -> string -> Janus_vx.Image.t

(** The content key of an image (hex digest of its serialised bytes) —
    the key every per-binary artifact, profile and fleet ledger hangs
    off. *)
val image_key : Janus_vx.Image.t -> string

(** Stage 1 — static analysis: CFG recovery, loop forest, per-loop
    classification. Key: image digest. [pool] shards the analysis per
    function on a miss (see {!Analysis.analyse_image}); hits ignore it,
    which is sound because the sharded analysis is bit-identical to the
    sequential one. *)
val analyse :
  ?store:store -> ?pool:Janus_pool.Pool.t -> Janus_vx.Image.t -> Analysis.t

(** Stage 2 — training-input profiling. Returns [(coverage, deps)]
    with each side present only when the configuration asks for it
    ([use_profile] / [use_checks]). Key: image digest + training input
    + fuel (the only config fields the profiler reads). *)
val profile :
  ?store:store ->
  cfg:config ->
  train_input:int64 list ->
  Janus_vx.Image.t ->
  Analysis.t ->
  Profiler.coverage option * Profiler.deps option

(** Loop selection outcome (re-exported as [Janus.selection]). *)
type selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;
}

(** Stage 3 — loop selection: eligibility and profitability filters
    over the analysis given the profiles. Pure and cheap — never
    cached. *)
val select :
  cfg:config ->
  Analysis.t ->
  coverage:Profiler.coverage option ->
  deps:Profiler.deps option ->
  selection

(** Stage 4 — rewrite-schedule generation for the selected loops.
    Key: image digest + training input + fuel + the selection-relevant
    config fields ([use_profile], [use_checks], [use_doacross], the
    three thresholds, [force_policy]) + [prefetch] + [fission] —
    everything the selection and the rule generator read, so equal keys
    imply an equal schedule. When [evidence] is attached, the key also
    quotes its generation digest, so a warm cache re-derives the
    schedule exactly when the merged fleet evidence shifts; with no
    evidence the key string is unchanged from a pgo-free build. *)
val schedule :
  ?store:store ->
  ?evidence:evidence ->
  cfg:config ->
  train_input:int64 list ->
  Janus_vx.Image.t ->
  Analysis.t ->
  selection ->
  Schedule.t
