(** The staged pipeline with its content-keyed artifact store; see
    pipeline.mli for the stage/artifact/key contract. *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Depgraph = Janus_analysis.Depgraph
module Rulegen = Janus_analysis.Rulegen
module Profiler = Janus_profile.Profiler
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs
module Image = Janus_vx.Image

type config = {
  threads : int;
  use_profile : bool;
  use_checks : bool;
  use_doacross : bool;
  cov_threshold : float;
  trip_threshold : float;
  work_threshold : float;
  force_policy : Desc.policy option;
  stm_everywhere : bool;
  prefetch : bool;
  fission : bool;
  model_cache : bool;
  verify : bool;
  fuel : int;
  trace : bool;
  adapt : bool;
}

let config ?(threads = 8) ?(use_profile = true) ?(use_checks = true)
    ?(use_doacross = false) ?(cov_threshold = 0.03) ?(trip_threshold = 8.0)
    ?(work_threshold = 2500.0) ?force_policy ?(stm_everywhere = false)
    ?(prefetch = false) ?(fission = false) ?(model_cache = false)
    ?(verify = true) ?(fuel = 400_000_000) ?(trace = false)
    ?(adapt = false) () =
  { threads; use_profile; use_checks; use_doacross; cov_threshold;
    trip_threshold; work_threshold; force_policy; stm_everywhere;
    prefetch; fission; model_cache; verify; fuel; trace; adapt }

(* ------------------------------------------------------------------ *)
(* The artifact store                                                  *)
(* ------------------------------------------------------------------ *)

type kstat = { mutable kh : int; mutable km : int }

type 'v table = { tbl : (string, 'v) Hashtbl.t; ks : kstat }

let table () = { tbl = Hashtbl.create 16; ks = { kh = 0; km = 0 } }

type store = {
  enabled : bool;
  mu : Mutex.t;
  images : Image.t table;
  analyses : Analysis.t table;
  coverages : Profiler.coverage table;
  depses : Profiler.deps table;
  schedules : Schedule.t table;
}

let store ?(enabled = true) () =
  { enabled; mu = Mutex.create (); images = table (); analyses = table ();
    coverages = table (); depses = table (); schedules = table () }

let default_store = store ()

let tables s =
  [ ("image", s.images.ks); ("analysis", s.analyses.ks);
    ("coverage", s.coverages.ks); ("deps", s.depses.ks);
    ("schedule", s.schedules.ks) ]

let clear s =
  Mutex.lock s.mu;
  Hashtbl.reset s.images.tbl;
  Hashtbl.reset s.analyses.tbl;
  Hashtbl.reset s.coverages.tbl;
  Hashtbl.reset s.depses.tbl;
  Hashtbl.reset s.schedules.tbl;
  Mutex.unlock s.mu

type cache_stats = { hits : int; misses : int }

let cache_stats s =
  Mutex.lock s.mu;
  let r =
    List.fold_left
      (fun acc (_, ks) ->
         { hits = acc.hits + ks.kh; misses = acc.misses + ks.km })
      { hits = 0; misses = 0 } (tables s)
  in
  Mutex.unlock s.mu;
  r

let publish_metrics s obs =
  Mutex.lock s.mu;
  let per_kind =
    List.map (fun (name, ks) -> (name, ks.kh, ks.km)) (tables s)
  in
  Mutex.unlock s.mu;
  let hits = List.fold_left (fun a (_, h, _) -> a + h) 0 per_kind in
  let misses = List.fold_left (fun a (_, _, m) -> a + m) 0 per_kind in
  Obs.set obs "pipeline.cache.hits" hits;
  Obs.set obs "pipeline.cache.misses" misses;
  List.iter
    (fun (name, h, m) ->
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.hits" name) h;
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.misses" name) m)
    per_kind

(* Memoise [f ()] under [key]. The computation runs outside the lock so
   other domains are never blocked on it; two domains may race to
   compute the same key, but artifacts are deterministic functions of
   their key, so both compute the same value and last-write-wins is
   benign. A disabled store still counts every recomputation as a miss
   (the [--no-cache] counters then report the cold-pipeline cost). *)
let memo s (t : _ table) key f =
  if not s.enabled then begin
    Mutex.lock s.mu;
    t.ks.km <- t.ks.km + 1;
    Mutex.unlock s.mu;
    f ()
  end
  else begin
    Mutex.lock s.mu;
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
      t.ks.kh <- t.ks.kh + 1;
      Mutex.unlock s.mu;
      v
    | None ->
      t.ks.km <- t.ks.km + 1;
      Mutex.unlock s.mu;
      let v = f () in
      Mutex.lock s.mu;
      Hashtbl.replace t.tbl key v;
      Mutex.unlock s.mu;
      v
  end

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)
(* ------------------------------------------------------------------ *)

let image_key img = Digest.to_hex (Digest.bytes (Image.to_bytes img))

let input_key input = String.concat "," (List.map Int64.to_string input)

let policy_key = function
  | None -> "-"
  | Some Desc.Chunked -> "chunked"
  | Some (Desc.Round_robin n) -> Printf.sprintf "rr:%d" n
  | Some (Desc.Doacross n) -> Printf.sprintf "da:%d" n

(* the config fields that loop selection and rule generation read; the
   schedule key quotes exactly these, so two configs differing only in
   execute-stage fields (threads, stm, tracing, cache model) share one
   cached schedule *)
let selection_key cfg =
  Printf.sprintf "p=%b;c=%b;da=%b;cov=%h;trip=%h;work=%h;pol=%s;pf=%b;fi=%b"
    cfg.use_profile cfg.use_checks cfg.use_doacross cfg.cov_threshold
    cfg.trip_threshold cfg.work_threshold (policy_key cfg.force_policy)
    cfg.prefetch cfg.fission

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let compile ?(store = default_store) ?(options = Jcc.default_options) source =
  let key =
    Printf.sprintf "%s|v=%s;o=%d;avx=%b;ap=%d"
      (Digest.to_hex (Digest.string source))
      (match options.Jcc.vendor with Jcc.Gcc -> "gcc" | Jcc.Icc -> "icc")
      options.Jcc.opt options.Jcc.avx options.Jcc.autopar
  in
  memo store store.images key (fun () -> Jcc.compile ~options source)

let analyse ?(store = default_store) image =
  memo store store.analyses (image_key image) (fun () ->
      Analysis.analyse_image image)

let profile ?(store = default_store) ~cfg ~train_input image analysis =
  let key () =
    Printf.sprintf "%s|fuel=%d|in=%s" (image_key image) cfg.fuel
      (input_key train_input)
  in
  let coverage =
    if cfg.use_profile then
      Some
        (memo store store.coverages (key ()) (fun () ->
             Profiler.run_coverage ~fuel:cfg.fuel ~input:train_input image
               analysis))
    else None
  in
  let deps =
    if cfg.use_checks then
      Some
        (memo store store.depses (key ()) (fun () ->
             Profiler.run_dependence ~fuel:cfg.fuel ~input:train_input image
               analysis))
    else None
  in
  (coverage, deps)

type selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;
}

let select ~cfg (analysis : Analysis.t) ~(coverage : Profiler.coverage option)
    ~(deps : Profiler.deps option) =
  let chosen = ref [] in
  let rejected = ref [] in
  List.iter
    (fun (r : Loopanal.report) ->
       let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
       let reject reason = rejected := (lid, reason) :: !rejected in
       let profile_ok () =
         if not cfg.use_profile then true
         else
           match coverage with
           | None -> true
           | Some cov ->
             Profiler.fraction cov lid >= cfg.cov_threshold
             && Profiler.avg_trip cov lid >= cfg.trip_threshold
             && Profiler.avg_work cov lid >= cfg.work_threshold
       in
       let accept policy =
         if not (profile_ok ()) then reject "filtered by profile"
         else
           let policy =
             match cfg.force_policy with Some p -> p | None -> policy
           in
           chosen := (r, policy) :: !chosen
       in
       match Analysis.eligibility r with
       (* fission first: a Static-Dependence loop that distributes into
          a DOALL product plus a sequential residue is worth more than
          DOACROSS chunk hand-off, and the profile gate still applies *)
       | (Analysis.Eligible_doacross _ | Analysis.Not_eligible _)
         when cfg.fission
              && (match r.Loopanal.cls with
                  | Loopanal.Static_dep _ -> Depgraph.plan r <> None
                  | _ -> false) ->
         accept Desc.Chunked
       | Analysis.Not_eligible reason -> reject reason
       | Analysis.Eligible_dynamic _ when not cfg.use_checks ->
         reject "dynamic loop (checks disabled)"
       | Analysis.Eligible_dynamic _
         when (match deps with
             | Some d -> Profiler.has_dep d lid
             | None -> false) ->
         reject "dependence observed during profiling"
       | Analysis.Eligible_doacross _ when not cfg.use_doacross ->
         reject "static dependence (doacross disabled)"
       | Analysis.Eligible_doacross pct ->
         (* the overlappable work must dwarf the per-invocation thread
            and hand-off overheads, or DOACROSS only adds cost (the
            "synchronisation overheads" the paper's future work warns
            about) *)
         let overlappable =
           match coverage with
           | Some cov ->
             Profiler.avg_work cov lid
             *. (1.0 -. (float_of_int pct /. 100.0))
           | None -> infinity
         in
         if cfg.use_profile && overlappable < 12_000.0 then
           reject "doacross not profitable"
         else accept (Desc.Doacross pct)
       | Analysis.Eligible_static | Analysis.Eligible_dynamic _ ->
         accept Desc.Chunked)
    analysis.Analysis.reports;
  { chosen = List.rev !chosen; rejected = List.rev !rejected }

let schedule ?(store = default_store) ~cfg ~train_input image
    (analysis : Analysis.t) (selection : selection) =
  let key =
    Printf.sprintf "%s|fuel=%d|in=%s|%s" (image_key image) cfg.fuel
      (input_key train_input) (selection_key cfg)
  in
  memo store store.schedules key (fun () ->
      fst
        (Rulegen.parallel_schedule ~prefetch:cfg.prefetch ~fission:cfg.fission
           analysis.Analysis.cfg selection.chosen))
