(** The staged pipeline with its content-keyed artifact store; see
    pipeline.mli for the stage/artifact/key contract. *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Depgraph = Janus_analysis.Depgraph
module Rulegen = Janus_analysis.Rulegen
module Profiler = Janus_profile.Profiler
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Jcc = Janus_jcc.Jcc
module Obs = Janus_obs.Obs
module Image = Janus_vx.Image

type config = {
  threads : int;
  use_profile : bool;
  use_checks : bool;
  use_doacross : bool;
  cov_threshold : float;
  trip_threshold : float;
  work_threshold : float;
  force_policy : Desc.policy option;
  stm_everywhere : bool;
  prefetch : bool;
  fission : bool;
  model_cache : bool;
  verify : bool;
  fuel : int;
  trace : bool;
  adapt : bool;
  fuse : bool;
}

(* Process-wide default for superinstruction fusion, so CLI kill
   switches (--no-fuse) reach every internally-built config without
   threading a parameter through each experiment. Fusion is an
   execute-stage concern: it never appears in selection keys, so
   toggling it cannot perturb cached schedules. *)
let fuse_default = ref true

let config ?(threads = 8) ?(use_profile = true) ?(use_checks = true)
    ?(use_doacross = false) ?(cov_threshold = 0.03) ?(trip_threshold = 8.0)
    ?(work_threshold = 2500.0) ?force_policy ?(stm_everywhere = false)
    ?(prefetch = false) ?(fission = false) ?(model_cache = false)
    ?(verify = true) ?(fuel = 400_000_000) ?(trace = false)
    ?(adapt = false) ?fuse () =
  let fuse = match fuse with Some f -> f | None -> !fuse_default in
  { threads; use_profile; use_checks; use_doacross; cov_threshold;
    trip_threshold; work_threshold; force_policy; stm_everywhere;
    prefetch; fission; model_cache; verify; fuel; trace; adapt; fuse }

(* Aggregated fleet evidence (built by janus_pgo from a persistent
   profile store) substituted for the one-shot training profile. The
   generation digest is the only part the store layer reads: it enters
   the schedule key so warm caches invalidate when evidence shifts. *)
type evidence = {
  ev_coverage : Profiler.coverage option;
  ev_deps : Profiler.deps option;
  ev_suspect : int list;
  ev_generation : string;
}

(* ------------------------------------------------------------------ *)
(* The artifact store                                                  *)
(* ------------------------------------------------------------------ *)

type kstat = {
  mutable kh : int;  (* memory hits *)
  mutable km : int;  (* misses (computed) *)
  mutable kd : int;  (* disk hits *)
  mutable ke : int;  (* disk errors: corrupt/stale entries, failed writes *)
}

(* how a kind's artifact crosses the process boundary; [dec] may raise
   on any malformed input — the loader treats that as a miss *)
type 'v codec = { enc : 'v -> bytes; dec : bytes -> 'v }

type 'v table = {
  kind : string;
  codec : 'v codec;
  tbl : (string, 'v) Hashtbl.t;
  ks : kstat;
}

let table kind codec =
  { kind; codec; tbl = Hashtbl.create 16;
    ks = { kh = 0; km = 0; kd = 0; ke = 0 } }

(* Analysis/profile artifacts are pure data (no closures, no custom
   blocks — records, lists, arrays, Hashtbls), so Marshal is a sound
   codec for them; images and schedules use their own byte formats. *)
let marshal_codec () =
  { enc = (fun v -> Marshal.to_bytes v []);
    dec = (fun b -> Marshal.from_bytes b 0) }

type store = {
  enabled : bool;
  dir : string option;  (* persistent layer root, when present *)
  prune_age : int option;    (* prune entries older than this (seconds) *)
  prune_bytes : int option;  (* prune oldest entries beyond this budget *)
  mu : Mutex.t;
  written : (string, unit) Hashtbl.t;
      (* entry paths this process published: pruning never deletes
         them, so a live run cannot evict its own warm artifacts *)
  images : Image.t table;
  analyses : Analysis.t table;
  coverages : Profiler.coverage table;
  depses : Profiler.deps table;
  schedules : Schedule.t table;
}

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.is_directory d -> ()  (* lost a race: fine *)
  end

(* Oldest-mtime-first pruning shared by the .jart artifact layer and
   the .jprof profile store. Two passes: everything beyond [max_age],
   then the oldest survivors until the directory fits [max_bytes].
   Protected paths (the live process's own writes) are never deleted
   and still count towards the byte budget — over-retention is safe,
   deleting a just-published artifact is not. *)
let prune_dir ?max_age ?max_bytes ?(protect = fun _ -> false) ~exts dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let now = Unix.gettimeofday () in
    let entries =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> List.mem (Filename.extension f) exts)
      |> List.filter_map (fun f ->
          let path = Filename.concat dir f in
          match Unix.stat path with
          | { Unix.st_kind = Unix.S_REG; st_mtime; st_size; _ } ->
            Some (st_mtime, path, st_size)
          | _ | (exception Unix.Unix_error _) -> None)
      |> List.sort compare  (* oldest first; name breaks mtime ties *)
    in
    let deleted = ref 0 in
    let remove path =
      match Sys.remove path with
      | () -> incr deleted; true
      | exception Sys_error _ -> false
    in
    let survivors =
      List.filter
        (fun (mtime, path, _) ->
           match max_age with
           | Some age
             when now -. mtime > float_of_int age && not (protect path) ->
             not (remove path)
           | _ -> true)
        entries
    in
    (match max_bytes with
     | None -> ()
     | Some budget ->
       let total =
         ref (List.fold_left (fun a (_, _, sz) -> a + sz) 0 survivors)
       in
       List.iter
         (fun (_, path, sz) ->
            if !total > budget && not (protect path) && remove path then
              total := !total - sz)
         survivors);
    !deleted
  end

let store ?(enabled = true) ?dir ?prune_age ?prune_bytes () =
  Option.iter mkdir_p dir;
  { enabled; dir; prune_age; prune_bytes; mu = Mutex.create ();
    written = Hashtbl.create 16;
    images = table "image" { enc = Image.to_bytes; dec = Image.of_bytes };
    analyses = table "analysis" (marshal_codec ());
    coverages = table "coverage" (marshal_codec ());
    depses = table "deps" (marshal_codec ());
    schedules =
      table "schedule" { enc = Schedule.to_bytes; dec = Schedule.of_bytes } }

let default_store = store ()

let store_dir s = s.dir

let prune_store ?max_age ?max_bytes s =
  match s.dir with
  | None -> 0
  | Some dir ->
    let max_age = match max_age with Some _ as a -> a | None -> s.prune_age in
    let max_bytes =
      match max_bytes with Some _ as b -> b | None -> s.prune_bytes
    in
    if max_age = None && max_bytes = None then 0
    else
      let protect path =
        Mutex.lock s.mu;
        let p = Hashtbl.mem s.written path in
        Mutex.unlock s.mu;
        p
      in
      prune_dir ?max_age ?max_bytes ~protect ~exts:[ ".jart" ] dir

let tables s =
  [ ("image", s.images.ks); ("analysis", s.analyses.ks);
    ("coverage", s.coverages.ks); ("deps", s.depses.ks);
    ("schedule", s.schedules.ks) ]

let clear s =
  Mutex.lock s.mu;
  Hashtbl.reset s.images.tbl;
  Hashtbl.reset s.analyses.tbl;
  Hashtbl.reset s.coverages.tbl;
  Hashtbl.reset s.depses.tbl;
  Hashtbl.reset s.schedules.tbl;
  Mutex.unlock s.mu

type cache_stats = { hits : int; misses : int }

let cache_stats s =
  Mutex.lock s.mu;
  let r =
    List.fold_left
      (fun acc (_, ks) ->
         { hits = acc.hits + ks.kh + ks.kd; misses = acc.misses + ks.km })
      { hits = 0; misses = 0 } (tables s)
  in
  Mutex.unlock s.mu;
  r

type kind_stat = {
  k_kind : string;
  k_mem_hits : int;
  k_disk_hits : int;
  k_misses : int;
  k_disk_errors : int;
}

let kind_stats s =
  Mutex.lock s.mu;
  let r =
    List.map
      (fun (name, ks) ->
         { k_kind = name; k_mem_hits = ks.kh; k_disk_hits = ks.kd;
           k_misses = ks.km; k_disk_errors = ks.ke })
      (tables s)
  in
  Mutex.unlock s.mu;
  r

let publish_metrics s obs =
  let per_kind = kind_stats s in
  let sum f = List.fold_left (fun a k -> a + f k) 0 per_kind in
  Obs.set obs "pipeline.cache.hits" (sum (fun k -> k.k_mem_hits + k.k_disk_hits));
  Obs.set obs "pipeline.cache.misses" (sum (fun k -> k.k_misses));
  Obs.set obs "pipeline.cache.disk.hits" (sum (fun k -> k.k_disk_hits));
  Obs.set obs "pipeline.cache.disk.errors" (sum (fun k -> k.k_disk_errors));
  List.iter
    (fun k ->
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.hits" k.k_kind)
         (k.k_mem_hits + k.k_disk_hits);
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.misses" k.k_kind)
         k.k_misses;
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.disk.hits" k.k_kind)
         k.k_disk_hits;
       Obs.set obs (Printf.sprintf "pipeline.cache.%s.disk.errors" k.k_kind)
         k.k_disk_errors)
    per_kind

(* ------------------------------------------------------------------ *)
(* The persistent layer                                                *)
(* ------------------------------------------------------------------ *)

(* One file per entry, named by the kind and the MD5 of the full
   content key. Self-describing, versioned and checksummed:

     JART1\n <build version>\n <kind>\n <key>\n <payload MD5>\n <len>\n
     <payload bytes>

   The full key is stored and compared on load, so a filename-hash
   collision reads back as a miss, never as a wrong artifact. A
   mismatched build version is an ordinary miss (artifact formats may
   change between builds); anything else malformed — bad magic, short
   file, digest mismatch, codec exception — is a [`Error]: counted,
   treated as a miss, and overwritten by the recomputed artifact. *)

let entry_magic = "JART1"

let entry_path dir kind key =
  Filename.concat dir
    (Printf.sprintf "%s-%s.jart" kind (Digest.to_hex (Digest.string key)))

let disk_load ~dir (t : 'v table) key : [ `Hit of 'v | `Miss | `Error ] =
  let path = entry_path dir t.kind key in
  if not (Sys.file_exists path) then `Miss
  else
    let stale = ref false in
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
           let line () = input_line ic in
           if line () <> entry_magic then failwith "magic";
           if line () <> Version.version then begin
             stale := true;
             failwith "version"
           end;
           if line () <> t.kind then failwith "kind";
           if line () <> key then failwith "key";
           let md5 = line () in
           let len = int_of_string (line ()) in
           let payload = really_input_string ic len in
           if pos_in ic <> in_channel_length ic then failwith "trailing";
           if Digest.to_hex (Digest.string payload) <> md5 then
             failwith "digest";
           t.codec.dec (Bytes.of_string payload))
    with
    | v -> `Hit v
    | exception _ -> if !stale then `Miss else `Error

(* Atomic publication: write to a unique temp file in the same
   directory, then rename over the final name. Readers see either the
   old complete entry or the new complete entry, never a torn write —
   concurrent writers of one key both publish the same (deterministic)
   artifact, so last-rename-wins is benign. *)
let disk_save ~dir (t : 'v table) key v =
  match
    let payload = Bytes.to_string (t.codec.enc v) in
    let path = entry_path dir t.kind key in
    let tmp = Filename.temp_file ~temp_dir:dir (t.kind ^ "-") ".tmp" in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
         let oc = open_out_bin tmp in
         (try
            Printf.fprintf oc "%s\n%s\n%s\n%s\n%s\n%d\n" entry_magic
              Version.version t.kind key
              (Digest.to_hex (Digest.string payload))
              (String.length payload);
            output_string oc payload
          with e -> close_out_noerr oc; raise e);
         close_out oc;
         Sys.rename tmp path)
  with
  | () -> true
  | exception _ -> false

(* Memoise [f ()] under [key]: memory first, then the persistent layer
   (when the store has one), then compute — and on compute, publish to
   both layers. The computation and all file I/O run outside the lock
   so other domains are never blocked on them; two domains may race to
   compute the same key, but artifacts are deterministic functions of
   their key, so both compute the same value and last-write-wins is
   benign. A disabled store still counts every recomputation as a miss
   (the [--no-cache] counters then report the cold-pipeline cost). *)
let memo s (t : _ table) key f =
  if not s.enabled then begin
    Mutex.lock s.mu;
    t.ks.km <- t.ks.km + 1;
    Mutex.unlock s.mu;
    f ()
  end
  else begin
    Mutex.lock s.mu;
    match Hashtbl.find_opt t.tbl key with
    | Some v ->
      t.ks.kh <- t.ks.kh + 1;
      Mutex.unlock s.mu;
      v
    | None ->
      Mutex.unlock s.mu;
      let from_disk =
        match s.dir with
        | Some dir -> disk_load ~dir t key
        | None -> `Miss
      in
      match from_disk with
      | `Hit v ->
        Mutex.lock s.mu;
        t.ks.kd <- t.ks.kd + 1;
        Hashtbl.replace t.tbl key v;
        Mutex.unlock s.mu;
        v
      | (`Miss | `Error) as r ->
        Mutex.lock s.mu;
        t.ks.km <- t.ks.km + 1;
        if r = `Error then t.ks.ke <- t.ks.ke + 1;
        Mutex.unlock s.mu;
        let v = f () in
        Mutex.lock s.mu;
        Hashtbl.replace t.tbl key v;
        Mutex.unlock s.mu;
        (match s.dir with
         | Some dir ->
           if disk_save ~dir t key v then begin
             Mutex.lock s.mu;
             Hashtbl.replace s.written (entry_path dir t.kind key) ();
             Mutex.unlock s.mu;
             (* keep the directory within its configured budget; the
                entry just published is in [written], so the prune can
                only evict other runs' stale artifacts *)
             if s.prune_age <> None || s.prune_bytes <> None then
               ignore (prune_store s)
           end
           else begin
             Mutex.lock s.mu;
             t.ks.ke <- t.ks.ke + 1;
             Mutex.unlock s.mu
           end
         | None -> ());
        v
  end

(* ------------------------------------------------------------------ *)
(* Content keys                                                        *)
(* ------------------------------------------------------------------ *)

let image_key img = Digest.to_hex (Digest.bytes (Image.to_bytes img))

let input_key input = String.concat "," (List.map Int64.to_string input)

let policy_key = function
  | None -> "-"
  | Some Desc.Chunked -> "chunked"
  | Some (Desc.Round_robin n) -> Printf.sprintf "rr:%d" n
  | Some (Desc.Doacross n) -> Printf.sprintf "da:%d" n

(* the config fields that loop selection and rule generation read; the
   schedule key quotes exactly these, so two configs differing only in
   execute-stage fields (threads, stm, tracing, cache model) share one
   cached schedule *)
let selection_key cfg =
  Printf.sprintf "p=%b;c=%b;da=%b;cov=%h;trip=%h;work=%h;pol=%s;pf=%b;fi=%b"
    cfg.use_profile cfg.use_checks cfg.use_doacross cfg.cov_threshold
    cfg.trip_threshold cfg.work_threshold (policy_key cfg.force_policy)
    cfg.prefetch cfg.fission

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

let compile ?(store = default_store) ?(options = Jcc.default_options) source =
  let key =
    Printf.sprintf "%s|v=%s;o=%d;avx=%b;ap=%d"
      (Digest.to_hex (Digest.string source))
      (match options.Jcc.vendor with Jcc.Gcc -> "gcc" | Jcc.Icc -> "icc")
      options.Jcc.opt options.Jcc.avx options.Jcc.autopar
  in
  memo store store.images key (fun () -> Jcc.compile ~options source)

let analyse ?(store = default_store) ?pool image =
  memo store store.analyses (image_key image) (fun () ->
      Analysis.analyse_image ?pool image)

let profile ?(store = default_store) ~cfg ~train_input image analysis =
  let key () =
    Printf.sprintf "%s|fuel=%d|in=%s" (image_key image) cfg.fuel
      (input_key train_input)
  in
  let coverage =
    if cfg.use_profile then
      Some
        (memo store store.coverages (key ()) (fun () ->
             Profiler.run_coverage ~fuel:cfg.fuel ~input:train_input image
               analysis))
    else None
  in
  let deps =
    if cfg.use_checks then
      Some
        (memo store store.depses (key ()) (fun () ->
             Profiler.run_dependence ~fuel:cfg.fuel ~input:train_input image
               analysis))
    else None
  in
  (coverage, deps)

type selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;
}

let select ~cfg (analysis : Analysis.t) ~(coverage : Profiler.coverage option)
    ~(deps : Profiler.deps option) =
  let chosen = ref [] in
  let rejected = ref [] in
  List.iter
    (fun (r : Loopanal.report) ->
       let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
       let reject reason = rejected := (lid, reason) :: !rejected in
       let profile_ok () =
         if not cfg.use_profile then true
         else
           match coverage with
           | None -> true
           | Some cov ->
             Profiler.fraction cov lid >= cfg.cov_threshold
             && Profiler.avg_trip cov lid >= cfg.trip_threshold
             && Profiler.avg_work cov lid >= cfg.work_threshold
       in
       let accept policy =
         if not (profile_ok ()) then reject "filtered by profile"
         else
           let policy =
             match cfg.force_policy with Some p -> p | None -> policy
           in
           chosen := (r, policy) :: !chosen
       in
       match Analysis.eligibility r with
       (* fission first: a Static-Dependence loop that distributes into
          a DOALL product plus a sequential residue is worth more than
          DOACROSS chunk hand-off, and the profile gate still applies *)
       | (Analysis.Eligible_doacross _ | Analysis.Not_eligible _)
         when cfg.fission
              && (match r.Loopanal.cls with
                  | Loopanal.Static_dep _ -> Depgraph.plan r <> None
                  | _ -> false) ->
         accept Desc.Chunked
       | Analysis.Not_eligible reason -> reject reason
       | Analysis.Eligible_dynamic _ when not cfg.use_checks ->
         reject "dynamic loop (checks disabled)"
       | Analysis.Eligible_dynamic _
         when (match deps with
             | Some d -> Profiler.has_dep d lid
             | None -> false) ->
         reject "dependence observed during profiling"
       | Analysis.Eligible_doacross _ when not cfg.use_doacross ->
         reject "static dependence (doacross disabled)"
       | Analysis.Eligible_doacross pct ->
         (* the overlappable work must dwarf the per-invocation thread
            and hand-off overheads, or DOACROSS only adds cost (the
            "synchronisation overheads" the paper's future work warns
            about) *)
         let overlappable =
           match coverage with
           | Some cov ->
             Profiler.avg_work cov lid
             *. (1.0 -. (float_of_int pct /. 100.0))
           | None -> infinity
         in
         if cfg.use_profile && overlappable < 12_000.0 then
           reject "doacross not profitable"
         else accept (Desc.Doacross pct)
       | Analysis.Eligible_static | Analysis.Eligible_dynamic _ ->
         accept Desc.Chunked)
    analysis.Analysis.reports;
  { chosen = List.rev !chosen; rejected = List.rev !rejected }

let schedule ?(store = default_store) ?evidence ~cfg ~train_input image
    (analysis : Analysis.t) (selection : selection) =
  (* with fleet evidence attached, the profile-store generation joins
     the key: a warm cache serves the old schedule only while the
     merged evidence is unchanged. No evidence = the exact pgo-free
     key string, so the subsystem is inert when unused. *)
  let gen =
    match evidence with
    | None -> ""
    | Some e -> Printf.sprintf "|gen=%s" e.ev_generation
  in
  let key =
    Printf.sprintf "%s|fuel=%d|in=%s|%s%s" (image_key image) cfg.fuel
      (input_key train_input) (selection_key cfg) gen
  in
  memo store store.schedules key (fun () ->
      fst
        (Rulegen.parallel_schedule ~prefetch:cfg.prefetch ~fission:cfg.fission
           analysis.Analysis.cfg selection.chosen))
