(** Regeneration of every table and figure in the paper's evaluation
    (§III), over the synthetic SPEC-like suite.

    Each [figN ()] returns typed rows and each [pp_figN] prints the
    series the paper reports. Absolute numbers come from the
    deterministic cost model; EXPERIMENTS.md compares their shape
    against the paper's. *)

module Suite = Janus_suite.Suite
module Profiler = Janus_profile.Profiler
module Loopanal = Janus_analysis.Loopanal
module Analysis = Janus_analysis.Analysis
module Jcc = Janus_jcc.Jcc
module Pool = Janus_pool.Pool

let nine = List.filter (fun b -> b.Suite.parallelisable) Suite.all

(* ------------------------------------------------------------------ *)
(* Evaluation context: shared artifact store + optional domain pool     *)
(* ------------------------------------------------------------------ *)

type ctx = {
  store : Pipeline.store;
  pool : Pool.t option;
  evidence : Janus_vx.Image.t -> Pipeline.evidence option;
}

let ctx ?(store = Pipeline.default_store) ?pool ?(evidence = fun _ -> None)
    () =
  { store; pool; evidence }

let default_ctx = ctx ()

(* Per-benchmark rows are independent, so a context with a pool fans
   them out over domains; results come back in submission order, so the
   printed figures are byte-identical to a sequential run. *)
let par_map ctx f xs =
  match ctx.pool with Some p -> Pool.map p f xs | None -> List.map f xs

let compile ctx ?options (b : Suite.benchmark) =
  Pipeline.compile ~store:ctx.store ?options b.Suite.source

(* fig6 and the excall footprint historically profile at the profiler's
   own default budget, not the pipeline default; the fuel is part of the
   profile's cache key, so the distinction must be preserved *)
let profiler_default_cfg = Pipeline.config ~fuel:100_000_000 ()

(* ------------------------------------------------------------------ *)
(* Fig. 6: loop classification                                         *)
(* ------------------------------------------------------------------ *)

type category =
  | Static_doall
  | Dynamic_doall
  | Static_dep
  | Dynamic_dep
  | Incompatible

let categories =
  [ Static_doall; Dynamic_doall; Static_dep; Dynamic_dep; Incompatible ]

let category_name = function
  | Static_doall -> "static-doall"
  | Dynamic_doall -> "dynamic-doall"
  | Static_dep -> "static-dep"
  | Dynamic_dep -> "dynamic-dep"
  | Incompatible -> "incompatible"

type fig6_row = {
  f6_name : string;
  f6_static : (category * int) list;    (* loop counts *)
  f6_dynamic : (category * float) list; (* fraction of execution time *)
}

(* final category of one loop, given the dependence profile *)
let categorise (deps : Profiler.deps) (r : Loopanal.report) =
  let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
  match r.Loopanal.cls with
  | Loopanal.Static_doall -> Static_doall
  | Loopanal.Static_dep _ -> Static_dep
  | Loopanal.Outer ->
    (* outer loops carry their inner loops' values across iterations;
       the paper has no separate bucket, so they count as static deps *)
    Static_dep
  | Loopanal.Incompatible _ -> Incompatible
  | Loopanal.Ambiguous _ ->
    if Profiler.has_dep deps lid then Dynamic_dep else Dynamic_doall

let fig6_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let analysis = Pipeline.analyse ~store:ctx.store ?pool:ctx.pool img in
  let coverage, deps =
    match
      Pipeline.profile ~store:ctx.store ~cfg:profiler_default_cfg
        ~train_input:(Suite.train_input b) img analysis
    with
    | Some cov, Some deps -> (cov, deps)
    | _ -> assert false (* the default config profiles both sides *)
  in
  let cats =
    List.map (fun r -> (r, categorise deps r)) analysis.Analysis.reports
  in
  let static =
    List.map
      (fun c -> (c, List.length (List.filter (fun (_, c') -> c' = c) cats)))
      categories
  in
  let dynamic =
    List.map
      (fun c ->
         let frac =
           List.fold_left
             (fun acc ((r : Loopanal.report), c') ->
                if c' = c then
                  acc
                  +. Profiler.fraction coverage
                       r.Loopanal.loop.Janus_analysis.Looptree.lid
                else acc)
             0.0 cats
         in
         (c, frac))
      categories
  in
  { f6_name = b.Suite.name; f6_static = static; f6_dynamic = dynamic }

let fig6 ?(ctx = default_ctx) () = par_map ctx (fig6_row ctx) Suite.all

let pp_fig6 ppf rows =
  Fmt.pf ppf
    "Fig. 6: loop classification (%% of loops | %% of execution time)@.";
  Fmt.pf ppf "%-18s %31s | %s@." "benchmark"
    "A%    C%    B%    D%    inc%" "A%    C%    B%    D%    inc%";
  List.iter
    (fun row ->
       let total =
         float_of_int (List.fold_left (fun a (_, n) -> a + n) 0 row.f6_static)
       in
       let spct c =
         if total = 0.0 then 0.0
         else 100.0 *. float_of_int (List.assoc c row.f6_static) /. total
       in
       let dpct c = 100.0 *. List.assoc c row.f6_dynamic in
       Fmt.pf ppf "%-18s %5.1f %5.1f %5.1f %5.1f %5.1f | %5.1f %5.1f %5.1f %5.1f %5.1f@."
         row.f6_name (spct Static_doall) (spct Dynamic_doall) (spct Static_dep)
         (spct Dynamic_dep) (spct Incompatible) (dpct Static_doall)
         (dpct Dynamic_doall) (dpct Static_dep) (dpct Dynamic_dep)
         (dpct Incompatible))
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 7: whole-program speedups for the four configurations          *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  f7_name : string;
  f7_dbm : float;
  f7_static : float;
  f7_profile : float;
  f7_janus : float;
}

let run_configs ?(ctx = default_ctx) ?options (b : Suite.benchmark) ~threads =
  let img = compile ctx ?options b in
  let native = Janus.run_native ~input:(Suite.ref_input b) img in
  let sp r = Janus.speedup ~native ~run:r in
  let dbm = Janus.run_dbm_only ~input:(Suite.ref_input b) img in
  let go cfg =
    Janus.parallelise ~cfg ~train_input:(Suite.train_input b)
      ~input:(Suite.ref_input b) ?evidence:(ctx.evidence img)
      ~store:ctx.store ?pool:ctx.pool img
  in
  let static = go (Janus.config ~threads ~use_profile:false ~use_checks:false ()) in
  let profile = go (Janus.config ~threads ~use_checks:false ()) in
  let janus = go (Janus.config ~threads ()) in
  (native, sp dbm, sp static, sp profile, sp janus, janus)

let fig7_row ctx (b : Suite.benchmark) =
  let _, dbm, static, profile, janus, _ = run_configs ~ctx b ~threads:8 in
  { f7_name = b.Suite.name; f7_dbm = dbm; f7_static = static;
    f7_profile = profile; f7_janus = janus }

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
    exp (List.fold_left (fun a x -> a +. log (max x 1e-9)) 0.0 xs
         /. float_of_int (List.length xs))

let fig7 ?(ctx = default_ctx) () =
  let rows = par_map ctx (fig7_row ctx) nine in
  let g f = geomean (List.map f rows) in
  rows
  @ [ { f7_name = "geomean"; f7_dbm = g (fun r -> r.f7_dbm);
        f7_static = g (fun r -> r.f7_static);
        f7_profile = g (fun r -> r.f7_profile);
        f7_janus = g (fun r -> r.f7_janus) } ]

let pp_fig7 ppf rows =
  Fmt.pf ppf "Fig. 7: speedup over native, 8 threads@.";
  Fmt.pf ppf "%-18s %10s %10s %10s %10s@." "benchmark" "DynamoRIO"
    "Static" "+Profile" "Janus";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %10.2f %10.2f %10.2f %10.2f@." r.f7_name r.f7_dbm
         r.f7_static r.f7_profile r.f7_janus)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 8: execution-time breakdown for 1 and 8 threads                *)
(* ------------------------------------------------------------------ *)

type fig8_row = {
  f8_name : string;
  f8_one : Janus.breakdown * int;    (* breakdown, total cycles *)
  f8_eight : Janus.breakdown * int;
}

let fig8_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let prepared =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input b)
      ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
  in
  let go threads =
    let r =
      Janus.run_parallel ~cfg:(Janus.config ~threads ())
        ~input:(Suite.ref_input b) ?pool:ctx.pool prepared
    in
    (r.Janus.breakdown, r.Janus.cycles)
  in
  { f8_name = b.Suite.name; f8_one = go 1; f8_eight = go 8 }

let fig8 ?(ctx = default_ctx) () = par_map ctx (fig8_row ctx) nine

let pp_fig8 ppf rows =
  Fmt.pf ppf
    "Fig. 8: execution-time breakdown, normalised to 1-thread Janus@.";
  Fmt.pf ppf "%-18s %-8s %6s %6s %6s %6s %6s@." "benchmark" "threads"
    "seq" "par" "init" "xlate" "check";
  List.iter
    (fun r ->
       let base = float_of_int (snd r.f8_one) in
       let line label ((b : Janus.breakdown), _) =
         let pct v = 100.0 *. float_of_int v /. base in
         Fmt.pf ppf "%-18s %-8s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%%@."
           r.f8_name label
           (pct b.Janus.seq_cycles) (pct b.Janus.par_cycles)
           (pct b.Janus.init_finish_cycles) (pct b.Janus.translate_cycles)
           (pct b.Janus.check_cycles)
       in
       line "1" r.f8_one;
       line "8" r.f8_eight)
    rows

(* ------------------------------------------------------------------ *)
(* Table I: array-bounds checks per loop                               *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_name : string;
  t1_loops_with_checks : int;
  t1_avg_checks : float;
}

let table1_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let analysis = Pipeline.analyse ~store:ctx.store ?pool:ctx.pool img in
  (* count every loop whose parallel version requires a check, whether
     or not the profile ultimately selects it (as the paper does) *)
  let checks =
    List.filter_map
      (fun (r : Loopanal.report) ->
         match r.Loopanal.check_ranges with
         | [] -> None
         | ranges ->
           let cd =
             {
               Janus_schedule.Desc.check_loop_id = 0;
               ranges =
                 List.map
                   (fun (c : Loopanal.check_range) ->
                      { Janus_schedule.Desc.base = c.Loopanal.ck_base;
                        extent = c.Loopanal.ck_extent;
                        width = c.Loopanal.ck_width;
                        written = c.Loopanal.ck_written })
                   ranges;
             }
           in
           Some (Janus_schedule.Desc.check_pairs cd))
      analysis.Analysis.reports
  in
  let n = List.length checks in
  {
    t1_name = b.Suite.name;
    t1_loops_with_checks = n;
    t1_avg_checks =
      (if n = 0 then 0.0
       else float_of_int (List.fold_left ( + ) 0 checks) /. float_of_int n);
  }

let table1 ?(ctx = default_ctx) () =
  List.filter
    (fun r -> r.t1_loops_with_checks > 0)
    (par_map ctx (table1_row ctx) nine)

let pp_table1 ppf rows =
  Fmt.pf ppf "Table I: array bounds checks per loop that requires them@.";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %.1f  (loops with checks: %d)@." r.t1_name
         r.t1_avg_checks r.t1_loops_with_checks)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 9: thread scaling                                              *)
(* ------------------------------------------------------------------ *)

type fig9_row = { f9_name : string; f9_speedups : (int * float) list }

let fig9_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let native = Janus.run_native ~input:(Suite.ref_input b) img in
  let prepared =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input b)
      ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
  in
  let speedups =
    List.map
      (fun threads ->
         let r =
           Janus.run_parallel ~cfg:(Janus.config ~threads ())
             ~input:(Suite.ref_input b) prepared
         in
         (threads, Janus.speedup ~native ~run:r))
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  { f9_name = b.Suite.name; f9_speedups = speedups }

let fig9 ?(ctx = default_ctx) () = par_map ctx (fig9_row ctx) nine

let pp_fig9 ppf rows =
  Fmt.pf ppf "Fig. 9: speedup vs thread count@.";
  Fmt.pf ppf "%-18s %s@." "benchmark"
    (String.concat " " (List.map (Printf.sprintf "%6d") [ 1; 2; 3; 4; 5; 6; 7; 8 ]));
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %s@." r.f9_name
         (String.concat " "
            (List.map (fun (_, s) -> Printf.sprintf "%6.2f" s) r.f9_speedups)))
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 10: rewrite-schedule size overhead                             *)
(* ------------------------------------------------------------------ *)

type fig10_row = { f10_name : string; f10_ratio : float }

let fig10_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let p =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input b)
      ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
  in
  let r =
    Janus.run_parallel ~cfg:(Janus.config ()) ~input:(Suite.train_input b)
      ?pool:ctx.pool p
  in
  {
    f10_name = b.Suite.name;
    f10_ratio =
      float_of_int r.Janus.schedule_size
      /. float_of_int r.Janus.executable_size;
  }

let fig10 ?(ctx = default_ctx) () =
  let rows = par_map ctx (fig10_row ctx) nine in
  rows
  @ [ { f10_name = "geomean";
        f10_ratio = geomean (List.map (fun r -> max r.f10_ratio 1e-9) rows) } ]

let pp_fig10 ppf rows =
  Fmt.pf ppf "Fig. 10: rewrite-schedule size / executable size@.";
  List.iter
    (fun r -> Fmt.pf ppf "%-18s %5.1f%%@." r.f10_name (100.0 *. r.f10_ratio))
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 11: Janus vs compiler auto-parallelisation                     *)
(* ------------------------------------------------------------------ *)

type fig11_row = {
  f11_name : string;
  f11_gcc_autopar : float;   (* gcc -ftree-parallelize-loops, vs gcc O3 *)
  f11_janus_gcc : float;     (* Janus on the gcc binary, vs gcc O3 *)
  f11_icc_autopar : float;   (* icc -parallel, vs icc O3 *)
  f11_janus_icc : float;     (* Janus on the icc binary, vs icc O3 *)
}

let fig11_row ctx (b : Suite.benchmark) =
  let compare_for vendor =
    let base_opts = { Jcc.default_options with vendor } in
    let img = compile ctx ~options:base_opts b in
    let native = Janus.run_native ~input:(Suite.ref_input b) img in
    let autopar_img =
      compile ctx ~options:{ base_opts with autopar = 8 } b
    in
    let autopar = Janus.run_native ~input:(Suite.ref_input b) autopar_img in
    let janus =
      Janus.parallelise ~cfg:(Janus.config ())
        ~train_input:(Suite.train_input b) ~input:(Suite.ref_input b)
        ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
    in
    (Janus.speedup ~native ~run:autopar, Janus.speedup ~native ~run:janus)
  in
  let gcc_ap, gcc_janus = compare_for Jcc.Gcc in
  let icc_ap, icc_janus = compare_for Jcc.Icc in
  { f11_name = b.Suite.name; f11_gcc_autopar = gcc_ap;
    f11_janus_gcc = gcc_janus; f11_icc_autopar = icc_ap;
    f11_janus_icc = icc_janus }

let fig11 ?(ctx = default_ctx) () =
  let rows = par_map ctx (fig11_row ctx) nine in
  let g f = geomean (List.map f rows) in
  rows
  @ [ { f11_name = "geomean";
        f11_gcc_autopar = g (fun r -> r.f11_gcc_autopar);
        f11_janus_gcc = g (fun r -> r.f11_janus_gcc);
        f11_icc_autopar = g (fun r -> r.f11_icc_autopar);
        f11_janus_icc = g (fun r -> r.f11_janus_icc) } ]

let pp_fig11 ppf rows =
  Fmt.pf ppf "Fig. 11: Janus vs compiler parallelisation (normalised to same-compiler O3)@.";
  Fmt.pf ppf "%-18s %12s %12s %12s %12s@." "benchmark" "gcc-autopar"
    "janus(gcc)" "icc-autopar" "janus(icc)";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %12.2f %12.2f %12.2f %12.2f@." r.f11_name
         r.f11_gcc_autopar r.f11_janus_gcc r.f11_icc_autopar r.f11_janus_icc)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 12: impact of compiler optimisation level                      *)
(* ------------------------------------------------------------------ *)

type fig12_row = {
  f12_name : string;
  f12_o2 : float;
  f12_o3 : float;
  f12_avx : float;
}

let fig12_row ctx (b : Suite.benchmark) =
  let janus_on options =
    let img = compile ctx ~options b in
    let native = Janus.run_native ~input:(Suite.ref_input b) img in
    let r =
      Janus.parallelise ~cfg:(Janus.config ())
        ~train_input:(Suite.train_input b) ~input:(Suite.ref_input b)
        ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
    in
    Janus.speedup ~native ~run:r
  in
  {
    f12_name = b.Suite.name;
    f12_o2 = janus_on { Jcc.default_options with opt = 2 };
    f12_o3 = janus_on Jcc.default_options;
    f12_avx = janus_on { Jcc.default_options with avx = true };
  }

let fig12 ?(ctx = default_ctx) () =
  let rows = par_map ctx (fig12_row ctx) nine in
  let g f = geomean (List.map f rows) in
  rows
  @ [ { f12_name = "geomean"; f12_o2 = g (fun r -> r.f12_o2);
        f12_o3 = g (fun r -> r.f12_o3); f12_avx = g (fun r -> r.f12_avx) } ]

let pp_fig12 ppf rows =
  Fmt.pf ppf "Fig. 12: Janus speedup by compiler optimisation level (gcc)@.";
  Fmt.pf ppf "%-18s %8s %8s %8s@." "benchmark" "O2" "O3" "O3+avx";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %8.2f %8.2f %8.2f@." r.f12_name r.f12_o2 r.f12_o3
         r.f12_avx)
    rows

(* ------------------------------------------------------------------ *)
(* Extension: DOACROSS over the nine benchmarks                        *)
(* ------------------------------------------------------------------ *)

type ext_doacross_row = {
  ed_name : string;
  ed_doall : float;     (* full Janus, DOALL only (the paper's system) *)
  ed_doacross : float;  (* + in-order chunk hand-off for type-B loops *)
  ed_extra_loops : int; (* additional loops parallelised *)
}

let ext_doacross_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let native = Janus.run_native ~input:(Suite.ref_input b) img in
  let go cfg =
    Janus.parallelise ~cfg ~train_input:(Suite.train_input b)
      ~input:(Suite.ref_input b) ?evidence:(ctx.evidence img)
      ~store:ctx.store ?pool:ctx.pool img
  in
  let doall = go (Janus.config ()) in
  let doacross = go (Janus.config ~use_doacross:true ()) in
  {
    ed_name = b.Suite.name;
    ed_doall = Janus.speedup ~native ~run:doall;
    ed_doacross = Janus.speedup ~native ~run:doacross;
    ed_extra_loops =
      List.length doacross.Janus.selected_loops
      - List.length doall.Janus.selected_loops;
  }

let ext_doacross ?(ctx = default_ctx) () =
  let rows = par_map ctx (ext_doacross_row ctx) nine in
  rows
  @ [ { ed_name = "geomean";
        ed_doall = geomean (List.map (fun r -> r.ed_doall) rows);
        ed_doacross = geomean (List.map (fun r -> r.ed_doacross) rows);
        ed_extra_loops =
          List.fold_left (fun a r -> a + r.ed_extra_loops) 0 rows } ]

let pp_ext_doacross ppf rows =
  Fmt.pf ppf
    "Extension: DOACROSS execution of static-dependence loops (8 threads)@.";
  Fmt.pf ppf "%-18s %10s %10s %12s@." "benchmark" "DOALL" "+DOACROSS"
    "extra loops";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %10.2f %10.2f %12d@." r.ed_name r.ed_doall
         r.ed_doacross r.ed_extra_loops)
    rows

(* ------------------------------------------------------------------ *)
(* Extension: software prefetching via MEM_PREFETCH rules              *)
(* ------------------------------------------------------------------ *)

type ext_prefetch_row = {
  epf_name : string;
  epf_janus : float;     (* full Janus under the cache-miss model *)
  epf_prefetch : float;  (* + MEM_PREFETCH on strided accesses *)
  epf_rules : int;       (* prefetch rules emitted *)
}

let ext_prefetch_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  (* the cache-miss model must be on in every arm, baseline included *)
  let native =
    Janus.run_native ~model_cache:true ~input:(Suite.ref_input b) img
  in
  let go cfg =
    let p =
      Janus.prepare ~cfg ~train_input:(Suite.train_input b)
        ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
    in
    (p, Janus.run_parallel ~cfg ~input:(Suite.ref_input b) ?pool:ctx.pool p)
  in
  let _, base = go (Janus.config ~model_cache:true ()) in
  let prepared_pf, pf = go (Janus.config ~model_cache:true ~prefetch:true ()) in
  let rules =
    Hashtbl.fold
      (fun _ rs acc ->
         acc
         + List.length
             (List.filter
                (fun (r : Janus_schedule.Rule.t) ->
                   r.Janus_schedule.Rule.id = Janus_schedule.Rule.MEM_PREFETCH)
                rs))
      (Janus_schedule.Schedule.index prepared_pf.Janus.p_schedule)
      0
  in
  {
    epf_name = b.Suite.name;
    epf_janus = Janus.speedup ~native ~run:base;
    epf_prefetch = Janus.speedup ~native ~run:pf;
    epf_rules = rules;
  }

let ext_prefetch ?(ctx = default_ctx) () =
  let rows = par_map ctx (ext_prefetch_row ctx) nine in
  rows
  @ [ { epf_name = "geomean";
        epf_janus = geomean (List.map (fun r -> r.epf_janus) rows);
        epf_prefetch = geomean (List.map (fun r -> r.epf_prefetch) rows);
        epf_rules = List.fold_left (fun a r -> a + r.epf_rules) 0 rows } ]

let pp_ext_prefetch ppf rows =
  Fmt.pf ppf
    "Extension: software prefetching (cache-miss model, 8 threads)@.";
  Fmt.pf ppf "%-18s %10s %12s %9s@." "benchmark" "Janus" "+prefetch"
    "pf rules";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %10.2f %12.2f %9d@." r.epf_name r.epf_janus
         r.epf_prefetch r.epf_rules)
    rows

(* ------------------------------------------------------------------ *)
(* Extension: the online adaptive governor on misbehaving inputs       *)
(* ------------------------------------------------------------------ *)

type ext_adapt_row = {
  ea_name : string;
  ea_static : float;
  ea_adapt : float;
  ea_demotions : int;
  ea_probes : int;
  ea_fallbacks : int;
}

(* the adversarial pair (whose reference input invalidates the training
   run's aliasing behaviour) plus two well-behaved controls that must
   come out within noise of the static system *)
let ext_adapt_benchmarks =
  Suite.adversarial @ List.filteri (fun i _ -> i < 2) nine

let ext_adapt_row ctx (b : Suite.benchmark) =
  let module Adapt = Janus_adapt.Adapt in
  let img = compile ctx b in
  let native = Janus.run_native ~input:(Suite.ref_input b) img in
  let go cfg =
    Janus.parallelise ~cfg ~train_input:(Suite.train_input b)
      ~input:(Suite.ref_input b) ?evidence:(ctx.evidence img)
      ~store:ctx.store ?pool:ctx.pool img
  in
  let static = go (Janus.config ()) in
  let adaptive = go (Janus.config ~adapt:true ()) in
  if not (String.equal native.Janus.output adaptive.Janus.output) then
    failwith (b.Suite.name ^ ": adaptive output diverges from native");
  let demotions, probes, fallbacks =
    match adaptive.Janus.governor with
    | None -> (0, 0, 0)
    | Some g ->
      List.fold_left
        (fun (d, p, f) (s : Adapt.loop_stats) ->
           (d + s.Adapt.demotions, p + s.Adapt.probes, f + s.Adapt.fallbacks))
        (0, 0, 0) (Adapt.snapshot g)
  in
  { ea_name = b.Suite.name;
    ea_static = Janus.speedup ~native ~run:static;
    ea_adapt = Janus.speedup ~native ~run:adaptive;
    ea_demotions = demotions;
    ea_probes = probes;
    ea_fallbacks = fallbacks }

let ext_adapt ?(ctx = default_ctx) () =
  par_map ctx (ext_adapt_row ctx) ext_adapt_benchmarks

let pp_ext_adapt ppf rows =
  Fmt.pf ppf
    "Extension: online adaptive governor vs static schedules (8 threads)@.";
  Fmt.pf ppf "%-18s %8s %9s %7s %6s %9s@." "benchmark" "static" "adaptive"
    "demote" "probe" "fallback";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %8.2f %9.2f %7d %6d %9d@." r.ea_name r.ea_static
         r.ea_adapt r.ea_demotions r.ea_probes r.ea_fallbacks)
    rows

(* ------------------------------------------------------------------ *)
(* Extension: SCC-driven loop fission on Static-Dependence loops       *)
(* ------------------------------------------------------------------ *)

type ext_fission_row = {
  ef_name : string;
  ef_base : float;
  ef_fission : float;
  ef_rules : int;
  ef_split : int;
  ef_verified : int;
  ef_demoted : int;
}

(* the mixed chain-plus-stream benchmark the extension targets, plus
   two well-behaved controls whose schedules must be untouched by the
   flag (their Static-Dependence loops either do not split or never
   dominate) *)
let ext_fission_benchmarks =
  Suite.adv_fission :: List.filteri (fun i _ -> i < 2) nine

let ext_fission_row ctx (b : Suite.benchmark) =
  let img = compile ctx b in
  let native = Janus.run_native ~input:(Suite.ref_input b) img in
  let go cfg =
    let p =
      Janus.prepare ~cfg ~train_input:(Suite.train_input b)
        ?evidence:(ctx.evidence img) ~store:ctx.store ?pool:ctx.pool img
    in
    (p, Janus.run_parallel ~cfg ~input:(Suite.ref_input b) ?pool:ctx.pool p)
  in
  let _, base = go (Janus.config ~threads:4 ()) in
  let pf, fission = go (Janus.config ~threads:4 ~fission:true ()) in
  if not (String.equal native.Janus.output fission.Janus.output) then
    failwith (b.Suite.name ^ ": fission output diverges from native");
  let rules =
    Hashtbl.fold
      (fun _ rs acc ->
         acc
         + List.length
             (List.filter
                (fun (r : Janus_schedule.Rule.t) ->
                   r.Janus_schedule.Rule.id = Janus_schedule.Rule.LOOP_FISSION)
                rs))
      (Janus_schedule.Schedule.index pf.Janus.p_schedule)
      0
  in
  let counter name =
    match fission.Janus.obs with
    | None -> 0
    | Some obs -> Janus_obs.Obs.counter obs name
  in
  {
    ef_name = b.Suite.name;
    ef_base = Janus.speedup ~native ~run:base;
    ef_fission = Janus.speedup ~native ~run:fission;
    ef_rules = rules;
    ef_split = counter "fission.split";
    ef_verified = counter "fission.verified";
    ef_demoted = counter "fission.demoted";
  }

let ext_fission ?(ctx = default_ctx) () =
  par_map ctx (ext_fission_row ctx) ext_fission_benchmarks

let pp_ext_fission ppf rows =
  Fmt.pf ppf
    "Extension: SCC-driven loop fission of Static-Dependence loops \
     (4 threads)@.";
  Fmt.pf ppf "%-18s %8s %9s %7s %14s %16s %15s@." "benchmark" "Janus"
    "+fission" "rules" "fission.split" "fission.verified" "fission.demoted";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %8.2f %9.2f %7d %14d %16d %15d@." r.ef_name
         r.ef_base r.ef_fission r.ef_rules r.ef_split r.ef_verified
         r.ef_demoted)
    rows

(* ------------------------------------------------------------------ *)
(* The speculation footprint the paper reports for bwaves (§III-B)     *)
(* ------------------------------------------------------------------ *)

type excall_stats = {
  ex_name : string;
  ex_avg_insns : float;
  ex_avg_reads : float;
  ex_avg_writes : float;
}

let excall_footprint ?(ctx = default_ctx) () =
  let b = Suite.find_exn "410.bwaves" in
  let img = compile ctx b in
  let analysis = Pipeline.analyse ~store:ctx.store ?pool:ctx.pool img in
  let cov =
    match
      Pipeline.profile ~store:ctx.store ~cfg:profiler_default_cfg
        ~train_input:(Suite.train_input b) img analysis
    with
    | Some cov, _ -> cov
    | None, _ -> assert false (* the default config profiles coverage *)
  in
  Hashtbl.fold
    (fun _ (c : Profiler.loop_cov) acc ->
       if c.Profiler.ex_calls = 0 then acc
       else
         { ex_name = b.Suite.name;
           ex_avg_insns =
             float_of_int c.Profiler.ex_insns /. float_of_int c.Profiler.ex_calls;
           ex_avg_reads =
             float_of_int c.Profiler.ex_reads /. float_of_int c.Profiler.ex_calls;
           ex_avg_writes =
             float_of_int c.Profiler.ex_writes /. float_of_int c.Profiler.ex_calls }
         :: acc)
    cov.Profiler.loops []

let pp_excall ppf rows =
  Fmt.pf ppf "Shared-library call footprint (paper: 49 insns, 11 reads, 0 writes)@.";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-18s %.0f insns, %.0f heap reads, %.0f writes per call@."
         r.ex_name r.ex_avg_insns r.ex_avg_reads r.ex_avg_writes)
    rows
