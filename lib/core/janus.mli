(** The Janus automatic-parallelisation pipeline (Fig. 1(a)).

    Typical use:
    {[
      let image = Janus_jcc.Jcc.compile source in
      let native = Janus.run_native image in
      let result = Janus.parallelise ~cfg:(Janus.config ~threads:8 ()) image in
      assert (String.equal native.output result.output);
      Fmt.pr "%.2fx@." (Janus.speedup ~native ~run:result)
    ]}

    The paper's four evaluation configurations (Fig. 7) map to:
    native execution {!run_native}; "DynamoRIO" {!run_dbm_only};
    "Statically-Driven" [config ~use_profile:false ~use_checks:false ()];
    "+ Profile" [config ~use_checks:false ()]; full Janus [config ()]. *)

module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Rulegen = Janus_analysis.Rulegen
module Profiler = Janus_profile.Profiler
module Dbm = Janus_dbm.Dbm
module Runtime = Janus_runtime.Runtime
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Obs = Janus_obs.Obs
module Adapt = Janus_adapt.Adapt

(** Pipeline configuration (an alias of {!Pipeline.config}: the static
    side of the pipeline lives there as explicit stages, and this module
    composes them). *)
type config = Pipeline.config = {
  threads : int;            (** virtual hardware threads (paper: 8) *)
  use_profile : bool;       (** profile-guided loop selection (§II-C) *)
  use_checks : bool;        (** dynamic DOALL via checks + speculation *)
  use_doacross : bool;
      (** extension (the paper's future work): parallelise
          static-dependence loops by in-order chunk hand-off *)
  cov_threshold : float;    (** min fraction of dynamic instructions *)
  trip_threshold : float;   (** min average iterations per invocation *)
  work_threshold : float;   (** min instructions per invocation *)
  force_policy : Desc.policy option;  (** scheduling-policy override *)
  stm_everywhere : bool;
      (** ablation: buffer every worker access transactionally *)
  prefetch : bool;
      (** extension (the paper's future work): MEM_PREFETCH rules on
          the selected loops' strided accesses *)
  fission : bool;
      (** extension (Aubert et al.): distribute Static-Dependence
          loops whose dependence graph splits into a carried-free and
          a carried part — the DOALL product runs in parallel, the
          sequential residue follows as a second loop instance. Off by
          default; when off, schedules are bit-identical to a
          fission-free build *)
  model_cache : bool;
      (** charge cold-line misses ({!Janus_vx.Cost.cache_miss}); pair
          with [prefetch] and a [run_native ~model_cache:true]
          baseline *)
  verify : bool;
      (** lint the rewrite schedule against the binary before the DBM
          applies it ({!Janus_verify.Verify}); loops with errors are
          demoted to sequential execution *)
  fuel : int;               (** interpreter instruction budget *)
  trace : bool;
      (** record per-thread event timelines in the run's {!Obs.t};
          off by default and zero-cost when disabled (cycle counts are
          unaffected either way) *)
  adapt : bool;
      (** online adaptive governor ({!Janus_adapt.Adapt}): demote
          loops that keep failing their checks (or losing cycles) to
          sequential execution after a few bad invocations, probe them
          periodically for re-promotion, and run unprofiled
          Dynamic-class loops' first invocations under the dependence
          profiler's shadow memory (training-free mode). Off by
          default; when off, cycle counts are bit-identical to a
          governor-free build *)
  fuse : bool;
      (** superinstruction fusion in DBM fragments ({!Janus_dbm.Dbm}):
          hot event-free instruction pairs execute as one step. On by
          default and inert at schedule level — outputs, virtual cycles
          and memory digests are bit-identical either way *)
}

(** Build a configuration; the defaults reproduce the paper's full
    Janus setup on 8 threads. *)
val config :
  ?threads:int ->
  ?use_profile:bool ->
  ?use_checks:bool ->
  ?use_doacross:bool ->
  ?cov_threshold:float ->
  ?trip_threshold:float ->
  ?work_threshold:float ->
  ?force_policy:Desc.policy ->
  ?stm_everywhere:bool ->
  ?prefetch:bool ->
  ?fission:bool ->
  ?model_cache:bool ->
  ?verify:bool ->
  ?fuel:int ->
  ?trace:bool ->
  ?adapt:bool ->
  ?fuse:bool ->
  unit ->
  config

(** Cycle breakdown of a run, the categories of Fig. 8. *)
type breakdown = {
  seq_cycles : int;          (** sequential application execution *)
  par_cycles : int;          (** max-worker time of parallel regions *)
  init_finish_cycles : int;  (** thread start/stop, context copies *)
  translate_cycles : int;    (** main-thread DBM translation *)
  check_cycles : int;        (** runtime array-bounds checks *)
}

(** Why a run stopped before the program halted. [loop] is the loop id
    the runtime was executing when the budget ran out, when known. *)
type abort =
  | Out_of_fuel of { addr : int; loop : int option }

(** Result of executing a program under any configuration. *)
type result = {
  output : string;           (** everything the guest printed *)
  exit_code : int;
  cycles : int;              (** modelled wall-clock, main thread *)
  icount : int;              (** dynamic instructions, all threads *)
  breakdown : breakdown;
  stats : Dbm.stats option;  (** DBM counters; [None] for native runs *)
  schedule_size : int;       (** rewrite-schedule bytes (Fig. 10) *)
  executable_size : int;     (** JX image bytes *)
  selected_loops : int list; (** loop ids parallelised *)
  demoted_loops : int list;
      (** loop ids the schedule verifier degraded to sequential
          execution (empty under [verify = false]) *)
  checks_per_loop : (int * int) list;
      (** loop id -> pairwise range comparisons (Table I) *)
  stm_commits : int;
  stm_aborts : int;
  mem_digest : string;
      (** digest of the final globals + allocated heap
          ({!Janus_vm.Run.mem_digest}): together with {!field:output}
          this is the run's observable architectural state, and any two
          configurations executing one program must agree on it *)
  aborted : abort option;
      (** set when the run was truncated (fuel exhaustion) instead of
          halting; the partial output/cycles are still reported *)
  obs : Obs.t option;
      (** the run's tracing/metrics registry ([None] for native runs):
          the {!field:breakdown} is derived from its [dbm.*] counters,
          and event timelines are present when [config.trace] was on *)
  governor : Adapt.t option;
      (** the adaptive governor's final ledgers, when [config.adapt]
          was on — {!Adapt.snapshot} and {!Adapt.pp_report} read it *)
}

(** Native execution: the baseline every figure normalises against. *)
val run_native :
  ?fuel:int -> ?input:int64 list -> ?model_cache:bool ->
  Janus_vx.Image.t -> result

(** Execution under the unmodified DBM (the "DynamoRIO" bar).
    [trace] enables event recording on the run's {!Obs.t}. *)
val run_dbm_only :
  ?fuel:int -> ?input:int64 list -> ?trace:bool -> Janus_vx.Image.t -> result

(** The Fig. 8 cycle decomposition as a view over a metrics registry's
    [dbm.*] counters; [cycles] is the run's main-thread total. *)
val breakdown_of_metrics : Obs.t -> cycles:int -> breakdown

(** Loop selection outcome: the loops to parallelise (with their
    scheduling policy) and the per-loop rejection reasons. *)
type selection = Pipeline.selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;
}

(** Select loops from an analysis given optional profile data, applying
    the configuration's eligibility and profitability filters. *)
val select :
  cfg:config ->
  Analysis.t ->
  coverage:Profiler.coverage option ->
  deps:Profiler.deps option ->
  selection

(** Everything the static side produces for one binary: analysis,
    training-run profiles, selection and the rewrite schedule. *)
type prepared = {
  p_image : Janus_vx.Image.t;
  p_analysis : Analysis.t;
  p_coverage : Profiler.coverage option;
  p_deps : Profiler.deps option;
  p_selection : selection;
  p_schedule : Schedule.t;
  p_evidence : Pipeline.evidence option;
      (** the fleet evidence the selection consumed, when prepared
          from an aggregate instead of a training run *)
}

(** Stages 1-2 of Fig. 1(a): static analysis, optional profiling on the
    training input, loop selection, schedule generation — a thin
    composition of the {!Pipeline} stages. [store] (default
    {!Pipeline.default_store}) memoises each stage's artifact under its
    content key, so evaluation sweeps share the static-side work.

    [evidence] substitutes aggregated fleet evidence
    ({!Pipeline.evidence}) for the training profile: no profiling run
    happens, selection consumes the merged coverage and pessimistic
    dependence verdicts, and the schedule is cached under a key that
    includes the evidence generation. Omitted, the behaviour (and every
    cache key) is bit-identical to a pgo-free build. *)
val prepare :
  ?cfg:config ->
  ?train_input:int64 list ->
  ?evidence:Pipeline.evidence ->
  ?store:Pipeline.store ->
  ?pool:Janus_pool.Pool.t ->
  Janus_vx.Image.t ->
  prepared

(** Stage 3: execute under the DBM with the parallelisation schedule.
    Reusable with different thread counts on one {!prepared}. *)
val run_parallel :
  ?cfg:config ->
  ?input:int64 list ->
  ?pool:Janus_pool.Pool.t ->
  prepared ->
  result

(** Run under the DBM with a pre-generated rewrite schedule (e.g.
    deserialised from disk): the paper's deployment model, where the
    schedule ships next to the binary and no analysis happens at run
    time. [selected_loops]/[checks_per_loop] are empty in the result —
    the runner only knows the rules. *)
val run_scheduled :
  ?cfg:config ->
  ?input:int64 list ->
  ?pool:Janus_pool.Pool.t ->
  Janus_vx.Image.t ->
  Schedule.t ->
  result

(** The whole pipeline: {!prepare} on the training input, then
    {!run_parallel} on the reference input. *)
val parallelise :
  ?cfg:config ->
  ?train_input:int64 list ->
  ?input:int64 list ->
  ?evidence:Pipeline.evidence ->
  ?store:Pipeline.store ->
  ?pool:Janus_pool.Pool.t ->
  Janus_vx.Image.t ->
  result

(** [speedup ~native ~run] is [native.cycles / run.cycles]. *)
val speedup : native:result -> run:result -> float
