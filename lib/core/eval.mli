(** Regeneration of every table and figure in the paper's evaluation
    (§III), over the synthetic SPEC-like suite. Each [figN ()] returns
    typed rows; each [pp_figN] prints the series the paper reports.
    EXPERIMENTS.md records these next to the paper's values. *)

module Suite = Janus_suite.Suite
module Profiler = Janus_profile.Profiler
module Loopanal = Janus_analysis.Loopanal
module Analysis = Janus_analysis.Analysis
module Jcc = Janus_jcc.Jcc

(** The nine parallelisable benchmarks (Figs. 7-12). *)
val nine : Suite.benchmark list

(** {1 Evaluation context}

    Every experiment takes an optional context bundling the artifact
    store its pipeline stages memoise into and an optional domain pool
    that fans the per-benchmark rows out in parallel. The default
    context shares {!Pipeline.default_store} and runs sequentially.
    Because pool results are collected in submission order and every
    artifact is a deterministic function of its key, the rows — and the
    printed figures — are identical whatever the context. *)

type ctx = {
  store : Pipeline.store;
  pool : Janus_pool.Pool.t option;
  evidence : Janus_vx.Image.t -> Pipeline.evidence option;
      (** fleet evidence for a binary (the [--profile-dir] loader);
          the default returns [None] everywhere, which keeps every row
          and cache key byte-identical to a pgo-free build *)
}

val ctx :
  ?store:Pipeline.store ->
  ?pool:Janus_pool.Pool.t ->
  ?evidence:(Janus_vx.Image.t -> Pipeline.evidence option) ->
  unit ->
  ctx
val default_ctx : ctx

(** {1 Fig. 6 — loop classification} *)

type category =
  | Static_doall   (** type A *)
  | Dynamic_doall  (** type C: ambiguous, profiling found no alias *)
  | Static_dep     (** type B (outer loops are counted here too) *)
  | Dynamic_dep    (** type D: ambiguous, profiling found a dependence *)
  | Incompatible

val categories : category list
val category_name : category -> string

type fig6_row = {
  f6_name : string;
  f6_static : (category * int) list;     (** loop counts *)
  f6_dynamic : (category * float) list;  (** fraction of execution time *)
}

val categorise : Profiler.deps -> Loopanal.report -> category
val fig6 : ?ctx:ctx -> unit -> fig6_row list
val pp_fig6 : Format.formatter -> fig6_row list -> unit

(** {1 Fig. 7 — whole-program speedups, 8 threads} *)

type fig7_row = {
  f7_name : string;
  f7_dbm : float;      (** DynamoRIO-only *)
  f7_static : float;   (** Statically-Driven *)
  f7_profile : float;  (** Statically-Driven + Profile *)
  f7_janus : float;    (** + Checks (full Janus) *)
}

val geomean : float list -> float
val fig7 : ?ctx:ctx -> unit -> fig7_row list
val pp_fig7 : Format.formatter -> fig7_row list -> unit

(** {1 Fig. 8 — execution-time breakdown, 1 vs 8 threads} *)

type fig8_row = {
  f8_name : string;
  f8_one : Janus.breakdown * int;
  f8_eight : Janus.breakdown * int;
}

val fig8 : ?ctx:ctx -> unit -> fig8_row list
val pp_fig8 : Format.formatter -> fig8_row list -> unit

(** {1 Table I — array-bounds checks per loop} *)

type table1_row = {
  t1_name : string;
  t1_loops_with_checks : int;
  t1_avg_checks : float;
}

val table1 : ?ctx:ctx -> unit -> table1_row list
val pp_table1 : Format.formatter -> table1_row list -> unit

(** {1 Fig. 9 — thread scaling} *)

type fig9_row = { f9_name : string; f9_speedups : (int * float) list }

val fig9 : ?ctx:ctx -> unit -> fig9_row list
val pp_fig9 : Format.formatter -> fig9_row list -> unit

(** {1 Fig. 10 — rewrite-schedule size overhead} *)

type fig10_row = { f10_name : string; f10_ratio : float }

val fig10 : ?ctx:ctx -> unit -> fig10_row list
val pp_fig10 : Format.formatter -> fig10_row list -> unit

(** {1 Fig. 11 — vs. compiler auto-parallelisation} *)

type fig11_row = {
  f11_name : string;
  f11_gcc_autopar : float;
  f11_janus_gcc : float;
  f11_icc_autopar : float;
  f11_janus_icc : float;
}

val fig11 : ?ctx:ctx -> unit -> fig11_row list
val pp_fig11 : Format.formatter -> fig11_row list -> unit

(** {1 Fig. 12 — impact of compiler optimisation level} *)

type fig12_row = {
  f12_name : string;
  f12_o2 : float;
  f12_o3 : float;
  f12_avx : float;
}

val fig12 : ?ctx:ctx -> unit -> fig12_row list
val pp_fig12 : Format.formatter -> fig12_row list -> unit

(** {1 Extension: DOACROSS over the nine benchmarks} *)

type ext_doacross_row = {
  ed_name : string;
  ed_doall : float;
  ed_doacross : float;
  ed_extra_loops : int;
}

val ext_doacross : ?ctx:ctx -> unit -> ext_doacross_row list
val pp_ext_doacross : Format.formatter -> ext_doacross_row list -> unit

(** {1 Extension: software prefetching via MEM_PREFETCH rules}

    All three arms (native baseline, Janus, Janus+prefetch) run under
    the cold-line cache-miss model, so the hidden latency is visible. *)

type ext_prefetch_row = {
  epf_name : string;
  epf_janus : float;     (** full Janus under the cache-miss model *)
  epf_prefetch : float;  (** + MEM_PREFETCH on strided accesses *)
  epf_rules : int;       (** prefetch rules emitted *)
}

val ext_prefetch : ?ctx:ctx -> unit -> ext_prefetch_row list
val pp_ext_prefetch : Format.formatter -> ext_prefetch_row list -> unit

(** {1 Extension: online adaptive governor (ISSUE 4)} *)

type ext_adapt_row = {
  ea_name : string;
  ea_static : float;   (** full-Janus speedup, decisions fixed at deploy *)
  ea_adapt : float;    (** + the online governor ({!Janus_adapt.Adapt}) *)
  ea_demotions : int;  (** governor demotions across the run's loops *)
  ea_probes : int;     (** re-promotion probe invocations *)
  ea_fallbacks : int;  (** failed-check sequential fallbacks *)
}

(** Adaptive vs. static execution over the adversarial pair
    ({!Suite.adversarial}) — whose reference input misbehaves in ways
    the training input never showed — plus two well-behaved controls.
    Raises [Failure] if an adaptive run's output diverges from
    native. *)
val ext_adapt : ?ctx:ctx -> unit -> ext_adapt_row list

val pp_ext_adapt : Format.formatter -> ext_adapt_row list -> unit

(** {1 Extension: SCC-driven loop fission (ISSUE 6)} *)

type ext_fission_row = {
  ef_name : string;
  ef_base : float;     (** full-Janus speedup, 4 threads, fission off *)
  ef_fission : float;  (** + SCC-driven fission of Static-Dep loops *)
  ef_rules : int;      (** LOOP_FISSION rules in the schedule *)
  ef_split : int;      (** [fission.split]: loops the planner split *)
  ef_verified : int;   (** [fission.verified]: splits the checker passed *)
  ef_demoted : int;    (** [fission.demoted]: splits demoted to sequential *)
}

(** Fission vs. plain execution over {!Suite.adv_fission} — whose
    dominant loop is Static Dependence overall but carries an
    independent streaming statement group — plus two well-behaved
    controls whose schedules the flag must leave alone. Raises
    [Failure] if a fission run's output diverges from native. *)
val ext_fission : ?ctx:ctx -> unit -> ext_fission_row list

val pp_ext_fission : Format.formatter -> ext_fission_row list -> unit

(** {1 The bwaves shared-library call footprint (§III-B)} *)

type excall_stats = {
  ex_name : string;
  ex_avg_insns : float;
  ex_avg_reads : float;
  ex_avg_writes : float;
}

val excall_footprint : ?ctx:ctx -> unit -> excall_stats list
val pp_excall : Format.formatter -> excall_stats list -> unit
