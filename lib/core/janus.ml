(** Janus: the complete automatic-parallelisation pipeline of Fig. 1(a).

    {[
      let image = Janus_jcc.Jcc.compile source in
      let result = Janus.parallelise image ~config:(Janus.config ~threads:8 ()) in
      (* result.output = the program's output, result.speedup, ... *)
    ]}

    The four evaluation configurations of Fig. 7 map to:
    - native execution: {!run_native}
    - "DynamoRIO": {!run_dbm_only}
    - "Statically-Driven": [parallelise ~config:(config ~use_profile:false ~use_checks:false ())]
    - "Statically-Driven + Profile": [~use_profile:true ~use_checks:false]
    - Janus (full): [~use_profile:true ~use_checks:true] *)

open Janus_vx
open Janus_vm
module Analysis = Janus_analysis.Analysis
module Loopanal = Janus_analysis.Loopanal
module Rulegen = Janus_analysis.Rulegen
module Profiler = Janus_profile.Profiler
module Dbm = Janus_dbm.Dbm
module Runtime = Janus_runtime.Runtime
module Schedule = Janus_schedule.Schedule
module Desc = Janus_schedule.Desc
module Verify = Janus_verify.Verify
module Obs = Janus_obs.Obs
module Adapt = Janus_adapt.Adapt

(* the configuration and the static-side stages live in [Pipeline]; the
   type equations keep every existing [Janus.config] user compiling *)
type config = Pipeline.config = {
  threads : int;
  use_profile : bool;       (* profile-guided loop selection *)
  use_checks : bool;        (* dynamic DOALL via checks + speculation *)
  use_doacross : bool;      (* extension: parallelise static-dependence
                               loops by in-order chunk hand-off *)
  cov_threshold : float;    (* min fraction of dynamic instructions *)
  trip_threshold : float;   (* min average iterations per invocation *)
  work_threshold : float;   (* min instructions per invocation: filters
                               loops whose per-invocation work cannot
                               amortise thread start/stop costs *)
  force_policy : Desc.policy option;
  stm_everywhere : bool;    (* ablation: transactional worker chunks *)
  prefetch : bool;          (* extension: MEM_PREFETCH rules on the
                               selected loops' strided accesses *)
  fission : bool;           (* extension: distribute static-dependence
                               loops into a DOALL product plus a
                               sequential residue (LOOP_FISSION) *)
  model_cache : bool;       (* charge cold-line misses (pair with
                               prefetch; compare against a native run
                               with the same flag) *)
  verify : bool;            (* lint the schedule before the DBM applies
                               it; loops with errors degrade to
                               sequential execution *)
  fuel : int;
  trace : bool;             (* record per-thread event timelines in the
                               run's Obs.t (off: zero-cost) *)
  adapt : bool;             (* online adaptive governor: demote
                               misbehaving loops at run time, probe for
                               re-promotion, sample unprofiled dynamic
                               loops (off: bit-identical to before the
                               governor existed) *)
  fuse : bool;              (* superinstruction fusion in DBM fragments
                               (schedule-inert: outputs, cycles and
                               digests bit-identical either way) *)
}

let config = Pipeline.config

(** Cycle breakdown of a run (Fig. 8's categories). *)
type breakdown = {
  seq_cycles : int;
  par_cycles : int;
  init_finish_cycles : int;
  translate_cycles : int;
  check_cycles : int;
}

(** Why a run stopped before the program halted. *)
type abort =
  | Out_of_fuel of { addr : int; loop : int option }

type result = {
  output : string;
  exit_code : int;
  cycles : int;
  icount : int;
  breakdown : breakdown;
  stats : Dbm.stats option;
  schedule_size : int;         (* bytes; 0 when no schedule *)
  executable_size : int;
  selected_loops : int list;   (* loop ids parallelised *)
  demoted_loops : int list;    (* loop ids the verifier degraded to
                                  sequential execution *)
  checks_per_loop : (int * int) list;  (* loop id -> pairwise comparisons *)
  stm_commits : int;
  stm_aborts : int;
  mem_digest : string;         (* final globals+heap digest (Run.mem_digest) *)
  aborted : abort option;      (* run truncated (e.g. fuel exhausted) *)
  obs : Obs.t option;          (* the run's tracing/metrics registry *)
  governor : Adapt.t option;   (* the adaptive governor, when ~adapt *)
}

let no_breakdown cycles =
  { seq_cycles = cycles; par_cycles = 0; init_finish_cycles = 0;
    translate_cycles = 0; check_cycles = 0 }

(** The Fig. 8 decomposition as a view over the metrics registry: every
    overhead category is a [dbm.*] counter, and sequential application
    time is whatever the main thread's clock holds beyond them. *)
let breakdown_of_metrics o ~cycles =
  let c = Obs.counter o in
  let other =
    c "dbm.init_finish_cycles" + c "dbm.parallel_cycles"
    + c "dbm.check_cycles" + c "dbm.translate_cycles_main"
  in
  {
    seq_cycles = max 0 (cycles - other);
    par_cycles = c "dbm.parallel_cycles";
    init_finish_cycles = c "dbm.init_finish_cycles";
    translate_cycles = c "dbm.translate_cycles_main";
    check_cycles = c "dbm.check_cycles";
  }

(** Native execution (the baseline every figure normalises against). *)
let run_native ?(fuel = 400_000_000) ?(input = []) ?(model_cache = false) image =
  let r = Run.run ~fuel ~input ~model_cache image in
  {
    output = r.Run.output;
    exit_code = r.Run.exit_code;
    cycles = r.Run.cycles;
    icount = r.Run.icount;
    breakdown = no_breakdown r.Run.cycles;
    mem_digest = r.Run.mem_digest;
    stats = None;
    schedule_size = 0;
    executable_size = Image.size image;
    selected_loops = [];
    demoted_loops = [];
    checks_per_loop = [];
    stm_commits = 0;
    stm_aborts = 0;
    aborted = None;
    obs = None;
    governor = None;
  }

let result_of_dbm_run image ~schedule_size ~selected ?(demoted = []) ~checks
    ?aborted ?governor ~obs (dbm : Dbm.t) (ctx : Machine.t) =
  let s = dbm.Dbm.stats in
  Dbm.publish_metrics dbm obs;
  {
    output = Buffer.contents ctx.Machine.out;
    exit_code = ctx.Machine.exit_code;
    cycles = ctx.Machine.cycles;
    icount = ctx.Machine.icount;
    breakdown = breakdown_of_metrics obs ~cycles:ctx.Machine.cycles;
    stats = Some s;
    schedule_size;
    executable_size = Image.size image;
    selected_loops = selected;
    demoted_loops = demoted;
    checks_per_loop = checks;
    stm_commits = s.Dbm.stm_commits;
    stm_aborts = s.Dbm.stm_aborts;
    mem_digest = Run.mem_digest ctx;
    aborted;
    obs = Some obs;
    governor;
  }

(** Execution under the unmodified DBM (the "DynamoRIO" bar of Fig. 7). *)
let run_dbm_only ?(fuel = 400_000_000) ?(input = []) ?(trace = false) image =
  let prog = Program.load image in
  let obs = Obs.create ~enabled:trace () in
  let dbm = Dbm.create ~obs ~fuse:!Pipeline.fuse_default prog in
  let cache = Dbm.new_cache Dbm.Main in
  let ctx = Run.fresh_context prog in
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  let aborted =
    match Dbm.run ~fuel dbm cache ctx with
    | `Out_of_fuel addr -> Some (Out_of_fuel { addr; loop = None })
    | `Halted | `Yielded -> None
  in
  result_of_dbm_run image ~schedule_size:0 ~selected:[] ~checks:[] ?aborted
    ~obs dbm ctx

(* ------------------------------------------------------------------ *)
(* Loop selection                                                      *)
(* ------------------------------------------------------------------ *)

type selection = Pipeline.selection = {
  chosen : (Loopanal.report * Desc.policy) list;
  rejected : (int * string) list;  (* loop id, reason *)
}

let select = Pipeline.select

(* ------------------------------------------------------------------ *)
(* The pipeline                                                        *)
(* ------------------------------------------------------------------ *)

type prepared = {
  p_image : Image.t;
  p_analysis : Analysis.t;
  p_coverage : Profiler.coverage option;
  p_deps : Profiler.deps option;
  p_selection : selection;
  p_schedule : Schedule.t;
  p_evidence : Pipeline.evidence option;
}

(** Stages 1-2 of Fig. 1(a) as a composition of the {!Pipeline} stages:
    analysis, optional training-input profiling, loop selection,
    schedule generation. [store] caches the per-stage artifacts by
    content key, so sweeps over execute-stage parameters (threads,
    tracing) recompute nothing. *)
let prepare ?(cfg = config ()) ?(train_input = []) ?evidence ?store ?pool
    image =
  let analysis = Pipeline.analyse ?store ?pool image in
  let coverage, deps =
    (* fleet evidence replaces the training run outright: the merged
       coverage and pessimistic dependence verdicts stand in for one
       profiling run's, gated by the same config switches *)
    match evidence with
    | Some (e : Pipeline.evidence) ->
      ((if cfg.use_profile then e.Pipeline.ev_coverage else None),
       (if cfg.use_checks then e.Pipeline.ev_deps else None))
    | None -> Pipeline.profile ?store ~cfg ~train_input image analysis
  in
  let selection = Pipeline.select ~cfg analysis ~coverage ~deps in
  let schedule =
    Pipeline.schedule ?store ?evidence ~cfg ~train_input image analysis
      selection
  in
  { p_image = image; p_analysis = analysis; p_coverage = coverage;
    p_deps = deps; p_selection = selection; p_schedule = schedule;
    p_evidence = evidence }

(* loop ids carried in the [aux] field of every rule with this id *)
let rule_loops (schedule : Schedule.t) id =
  List.filter_map
    (fun (r : Janus_schedule.Rule.t) ->
       if r.Janus_schedule.Rule.id = id then
         Some (Int64.to_int r.Janus_schedule.Rule.aux)
       else None)
    schedule.Schedule.rules
  |> List.sort_uniq compare

(** Stage 3: run the program under the DBM with the parallelisation
    schedule (the "Parallelisation Stage"). *)
let run_parallel ?(cfg = config ()) ?(input = []) ?pool (p : prepared) =
  (* gate the schedule through the verifier: loops it cannot prove safe
     run sequentially (graceful degradation, not a crash) *)
  let schedule, demoted =
    if cfg.verify then
      let s, demoted, _findings =
        Verify.check_and_demote ?pool p.p_image p.p_schedule
      in
      (s, demoted)
    else (p.p_schedule, [])
  in
  let prog = Program.load p.p_image in
  let obs = Obs.create ~enabled:cfg.trace () in
  let dbm = Dbm.create ~schedule ~obs ~fuse:cfg.fuse prog in
  let rt_config =
    { Runtime.threads = cfg.threads; force_policy = cfg.force_policy;
      stm_access_limit = 4096; stm_everywhere = cfg.stm_everywhere;
      fuel = cfg.fuel }
  in
  let governor =
    if cfg.adapt then Some (Adapt.create ~obs ()) else None
  in
  (match governor with
   | Some g ->
     (* A loop counts as profiled when its selection rests on evidence:
        static-class loops always, dynamic (checked) loops only when
        dependence profiling actually ran. Unprofiled dynamic loops
        start in the governor's training-free sampling state. A loop
        whose aggregated fleet history is suspect (demotions, failed
        checks in earlier runs) warm-starts in probation instead of
        re-earning its first demotion from scratch. *)
     let suspect =
       match p.p_evidence with
       | Some e -> e.Pipeline.ev_suspect
       | None -> []
     in
     List.iter
       (fun ((r : Loopanal.report), _) ->
          let lid = r.Loopanal.loop.Janus_analysis.Looptree.lid in
          if not (List.mem lid demoted) then
            if List.mem lid suspect then Adapt.register_suspect g lid
            else
              let profiled =
                r.Loopanal.check_ranges = [] || p.p_deps <> None
              in
              Adapt.register g lid ~profiled)
       p.p_selection.chosen
   | None -> ());
  let rt = Runtime.create ~config:rt_config ?adapt:governor dbm in
  Runtime.install rt;
  let ctx = Run.fresh_context prog in
  ctx.Machine.model_cache <- cfg.model_cache;
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  let aborted =
    try
      match Dbm.run ~fuel:cfg.fuel dbm rt.Runtime.main_cache ctx with
      | `Out_of_fuel addr ->
        let loop =
          if rt.Runtime.current_loop >= 0 then Some rt.Runtime.current_loop
          else None
        in
        Some (Out_of_fuel { addr; loop })
      | `Halted | `Yielded -> None
    with Runtime.Worker_out_of_fuel (_w, addr) ->
      Some (Out_of_fuel { addr; loop = Some rt.Runtime.current_loop })
  in
  Runtime.publish_metrics rt obs;
  (* fission census: how many Static-Dependence loops were examined,
     how many the schedule split, and how the verifier judged those *)
  if cfg.fission then begin
    let considered =
      List.length
        (List.filter
           (fun (r : Loopanal.report) ->
              match r.Loopanal.cls with
              | Loopanal.Static_dep _ -> true
              | _ -> false)
           p.p_analysis.Analysis.reports)
    in
    let split = rule_loops p.p_schedule Janus_schedule.Rule.LOOP_FISSION in
    let split_demoted = List.filter (fun l -> List.mem l demoted) split in
    Obs.set obs "fission.considered" considered;
    Obs.set obs "fission.split" (List.length split);
    Obs.set obs "fission.demoted" (List.length split_demoted);
    Obs.set obs "fission.verified"
      (List.length split - List.length split_demoted)
  end;
  let selected =
    List.filter
      (fun lid -> not (List.mem lid demoted))
      (List.map
         (fun ((r : Loopanal.report), _) ->
            r.Loopanal.loop.Janus_analysis.Looptree.lid)
         p.p_selection.chosen)
  in
  let checks =
    List.filter_map
      (fun ((r : Loopanal.report), _) ->
         if r.Loopanal.check_ranges = [] then None
         else
           let cd =
             {
               Desc.check_loop_id = r.Loopanal.loop.Janus_analysis.Looptree.lid;
               ranges =
                 List.map
                   (fun (c : Loopanal.check_range) ->
                      { Desc.base = c.Loopanal.ck_base;
                        extent = c.Loopanal.ck_extent;
                        width = c.Loopanal.ck_width;
                        written = c.Loopanal.ck_written })
                   r.Loopanal.check_ranges;
             }
           in
           Some
             (r.Loopanal.loop.Janus_analysis.Looptree.lid, Desc.check_pairs cd))
      p.p_selection.chosen
  in
  result_of_dbm_run p.p_image
    ~schedule_size:(Schedule.size p.p_schedule)
    ~selected ~demoted ~checks ?aborted ?governor ~obs dbm ctx

(** Run under the DBM with a pre-generated rewrite schedule — the
    paper's deployment model: the schedule is produced offline by the
    static analyser and shipped next to the binary; no analysis happens
    at run time. *)
let run_scheduled ?(cfg = config ()) ?(input = []) ?pool image schedule =
  let shipped_size = Schedule.size schedule in
  let schedule, demoted =
    if cfg.verify then
      let s, demoted, _findings =
        Verify.check_and_demote ?pool image schedule
      in
      (s, demoted)
    else (schedule, [])
  in
  let prog = Program.load image in
  let obs = Obs.create ~enabled:cfg.trace () in
  let dbm = Dbm.create ~schedule ~obs ~fuse:cfg.fuse prog in
  let rt_config =
    { Runtime.threads = cfg.threads; force_policy = cfg.force_policy;
      stm_access_limit = 4096; stm_everywhere = cfg.stm_everywhere;
      fuel = cfg.fuel }
  in
  (* the deployed loop set is whatever the shipped schedule initialises
     — by LOOP_INIT or by LOOP_FISSION *)
  let rule_loops id = rule_loops schedule id in
  let selected =
    List.sort_uniq compare
      (rule_loops Janus_schedule.Rule.LOOP_INIT
       @ rule_loops Janus_schedule.Rule.LOOP_FISSION)
  in
  let governor =
    if cfg.adapt then Some (Adapt.create ~obs ()) else None
  in
  (match governor with
   | Some g ->
     (* Deployment model: the schedule ships alone, with no [.jpf]
        beside it — so a checked (Dynamic-class) loop carries no
        dependence evidence and starts in the governor's training-free
        sampling state; unchecked loops were proven statically. *)
     let checked = rule_loops Janus_schedule.Rule.MEM_BOUNDS_CHECK in
     List.iter
       (fun lid -> Adapt.register g lid ~profiled:(not (List.mem lid checked)))
       selected
   | None -> ());
  let rt = Runtime.create ~config:rt_config ?adapt:governor dbm in
  Runtime.install rt;
  let ctx = Run.fresh_context prog in
  ctx.Machine.model_cache <- cfg.model_cache;
  List.iter (fun v -> Queue.push v ctx.Machine.input) input;
  let aborted =
    try
      match Dbm.run ~fuel:cfg.fuel dbm rt.Runtime.main_cache ctx with
      | `Out_of_fuel addr ->
        let loop =
          if rt.Runtime.current_loop >= 0 then Some rt.Runtime.current_loop
          else None
        in
        Some (Out_of_fuel { addr; loop })
      | `Halted | `Yielded -> None
    with Runtime.Worker_out_of_fuel (_w, addr) ->
      Some (Out_of_fuel { addr; loop = Some rt.Runtime.current_loop })
  in
  Runtime.publish_metrics rt obs;
  result_of_dbm_run image ~schedule_size:shipped_size ~selected ~demoted
    ~checks:[] ?aborted ?governor ~obs dbm ctx

(** The whole pipeline: analyse, profile on the training input, select,
    parallelise, run on the reference input. *)
let parallelise ?(cfg = config ()) ?(train_input = []) ?(input = [])
    ?evidence ?store ?pool image =
  let p = prepare ~cfg ~train_input ?evidence ?store ?pool image in
  run_parallel ~cfg ~input ?pool p

(** Convenience: speedup of [b] over [a] (same program, same input). *)
let speedup ~native ~run =
  if run.cycles = 0 then 0.0
  else float_of_int native.cycles /. float_of_int run.cycles
