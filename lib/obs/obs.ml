(** janus_obs: low-overhead structured tracing and metrics, shared by
    the DBM, the parallel runtime, the STM and the profiler.

    Design constraints (see DESIGN.md §10):
    - {e zero cost when disabled}: every emission site guards on
      {!tracing} before constructing an event, so a disabled tracer
      allocates nothing and never perturbs the virtual-cycle model;
    - {e bounded}: events land in a fixed-capacity ring buffer — a
      pathological run (an STM abort storm, say) overwrites the oldest
      events instead of exhausting memory, and {!dropped} reports how
      many were lost;
    - {e derivable}: aggregate counters and histograms live in a
      registry keyed by name, and the evaluation's Fig. 8 breakdown is
      re-derived from that registry rather than from ad-hoc fields. *)

(* ------------------------------------------------------------------ *)
(* Event taxonomy                                                      *)
(* ------------------------------------------------------------------ *)

type kind =
  | Block_translated of { addr : int; insns : int; trace : bool }
  | Fragment_linked of { addr : int }
  | Cache_flushed
  | Rule_fired of { rule : string; addr : int }
  | Lib_resolved of { name : string; addr : int }
  | Loop_init of { loop_id : int; threads : int; trips : int }
  | Loop_finish of { loop_id : int }
  | Seq_fallback of { loop_id : int }
  | Chunk_dispatched of {
      loop_id : int;
      worker : int;
      iv_start : int64;
      iv_end : int64;
      iters : int;
    }
  | Check_passed of { loop_id : int; pairs : int }
  | Check_failed of { loop_id : int; pairs : int }
  | Tx_started of { addr : int }
  | Tx_committed of { reads : int; writes : int }
  | Tx_aborted of { addr : int }
  | Governor_demoted of { loop_id : int; state : string }
  | Governor_promoted of { loop_id : int; state : string }
  | Governor_probe of { loop_id : int }
  | Governor_sample of { loop_id : int; dep : bool }

type event = {
  ts : int;    (* virtual-cycle clock of the emitting thread *)
  dur : int;   (* span length in cycles; 0 = instant *)
  tid : int;   (* 0 = main, w+1 = worker w *)
  kind : kind;
}

let category = function
  | Block_translated _ -> "block_translated"
  | Fragment_linked _ -> "fragment_linked"
  | Cache_flushed -> "cache_flushed"
  | Rule_fired _ -> "rule_fired"
  | Lib_resolved _ -> "lib_resolved"
  | Loop_init _ -> "loop_init"
  | Loop_finish _ -> "loop_finish"
  | Seq_fallback _ -> "seq_fallback"
  | Chunk_dispatched _ -> "chunk_dispatched"
  | Check_passed _ -> "check_passed"
  | Check_failed _ -> "check_failed"
  | Tx_started _ -> "tx_start"
  | Tx_committed _ -> "tx_commit"
  | Tx_aborted _ -> "tx_abort"
  | Governor_demoted _ -> "governor_demoted"
  | Governor_promoted _ -> "governor_promoted"
  | Governor_probe _ -> "governor_probe"
  | Governor_sample _ -> "governor_sample"

let all_categories =
  [
    "block_translated"; "fragment_linked"; "cache_flushed"; "rule_fired";
    "lib_resolved"; "loop_init"; "loop_finish"; "seq_fallback";
    "chunk_dispatched"; "check_passed"; "check_failed"; "tx_start";
    "tx_commit"; "tx_abort"; "governor_demoted"; "governor_promoted";
    "governor_probe"; "governor_sample";
  ]

(* (name, value) pairs describing the payload, for exporters *)
let fields = function
  | Block_translated { addr; insns; trace } ->
    [ ("addr", `Hex addr); ("insns", `Int insns);
      ("trace", `Int (if trace then 1 else 0)) ]
  | Fragment_linked { addr } -> [ ("addr", `Hex addr) ]
  | Cache_flushed -> []
  | Rule_fired { rule; addr } -> [ ("rule", `Str rule); ("addr", `Hex addr) ]
  | Lib_resolved { name; addr } -> [ ("name", `Str name); ("addr", `Hex addr) ]
  | Loop_init { loop_id; threads; trips } ->
    [ ("loop", `Int loop_id); ("threads", `Int threads); ("trips", `Int trips) ]
  | Loop_finish { loop_id } -> [ ("loop", `Int loop_id) ]
  | Seq_fallback { loop_id } -> [ ("loop", `Int loop_id) ]
  | Chunk_dispatched { loop_id; worker; iv_start; iv_end; iters } ->
    [ ("loop", `Int loop_id); ("worker", `Int worker);
      ("iv_start", `I64 iv_start); ("iv_end", `I64 iv_end);
      ("iters", `Int iters) ]
  | Check_passed { loop_id; pairs } ->
    [ ("loop", `Int loop_id); ("pairs", `Int pairs) ]
  | Check_failed { loop_id; pairs } ->
    [ ("loop", `Int loop_id); ("pairs", `Int pairs) ]
  | Tx_started { addr } -> [ ("addr", `Hex addr) ]
  | Tx_committed { reads; writes } ->
    [ ("reads", `Int reads); ("writes", `Int writes) ]
  | Tx_aborted { addr } -> [ ("addr", `Hex addr) ]
  | Governor_demoted { loop_id; state } ->
    [ ("loop", `Int loop_id); ("state", `Str state) ]
  | Governor_promoted { loop_id; state } ->
    [ ("loop", `Int loop_id); ("state", `Str state) ]
  | Governor_probe { loop_id } -> [ ("loop", `Int loop_id) ]
  | Governor_sample { loop_id; dep } ->
    [ ("loop", `Int loop_id); ("dep", `Int (if dep then 1 else 0)) ]

let pp_event ppf e =
  let pp_field ppf (k, v) =
    match v with
    | `Hex n -> Fmt.pf ppf "%s=0x%x" k n
    | `Int n -> Fmt.pf ppf "%s=%d" k n
    | `I64 n -> Fmt.pf ppf "%s=%Ld" k n
    | `Str s -> Fmt.pf ppf "%s=%s" k s
  in
  Fmt.pf ppf "[cycle %d tid %d] %s" e.ts e.tid (category e.kind);
  if e.dur > 0 then Fmt.pf ppf " dur=%d" e.dur;
  List.iter (fun f -> Fmt.pf ppf " %a" pp_field f) (fields e.kind)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type hist = {
  mutable h_count : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;  (* log2 buckets: [0], (0;1], (1;2], (2;4] ... *)
}

type hist_summary = { n : int; sum : int; min_v : int; max_v : int }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let i = ref 1 and b = ref 1 in
    while v > !b && !i < 62 do
      b := !b * 2;
      incr i
    done;
    !i
  end

(* ------------------------------------------------------------------ *)
(* The tracer/metrics handle                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  capacity : int;
  mutable enabled : bool;
  mutable buf : event array;  (* [||] until the first emission *)
  mutable next : int;         (* next ring index to write *)
  mutable total : int;        (* events ever emitted *)
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create ?(capacity = 65_536) ?(enabled = false) () =
  {
    capacity = max 1 capacity;
    enabled;
    buf = [||];
    next = 0;
    total = 0;
    counters = Hashtbl.create 32;
    hists = Hashtbl.create 8;
  }

let tracing t = t.enabled
let set_tracing t on = t.enabled <- on

let emit t ~tid ~ts ?(dur = 0) kind =
  if t.enabled then begin
    if Array.length t.buf = 0 then
      t.buf <- Array.make t.capacity { ts = 0; dur = 0; tid = 0; kind = Cache_flushed };
    t.buf.(t.next) <- { ts; dur; tid; kind };
    t.next <- (t.next + 1) mod t.capacity;
    t.total <- t.total + 1
  end

let total_events t = t.total
let dropped t = max 0 (t.total - t.capacity)

(** Retained events, oldest first. *)
let events t =
  if t.total = 0 then []
  else if t.total <= t.capacity then
    Array.to_list (Array.sub t.buf 0 t.total)
  else
    List.init t.capacity (fun i -> t.buf.((t.next + i) mod t.capacity))

let categories t =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun e ->
       let c = category e.kind in
       Hashtbl.replace counts c (1 + (try Hashtbl.find counts c with Not_found -> 0)))
    (events t);
  List.filter_map
    (fun c ->
       match Hashtbl.find_opt counts c with Some n -> Some (c, n) | None -> None)
    all_categories

(* ------------------------------------------------------------------ *)
(* Counters and histograms                                             *)
(* ------------------------------------------------------------------ *)

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace t.counters name r;
    r

let incr t ?(by = 1) name =
  let r = counter_ref t name in
  r := !r + by

let set t name v = counter_ref t name := v
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let observe t name v =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
      let h =
        { h_count = 0; h_sum = 0; h_min = max_int; h_max = min_int;
          h_buckets = Array.make 63 0 }
      in
      Hashtbl.replace t.hists name h;
      h
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let hist_summaries t =
  Hashtbl.fold
    (fun k h acc ->
       (k, { n = h.h_count; sum = h.h_sum; min_v = h.h_min; max_v = h.h_max })
       :: acc)
    t.hists []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let args_json b kind =
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b (Printf.sprintf "\"%s\":" (json_escape k));
       match v with
       | `Hex n | `Int n -> Buffer.add_string b (string_of_int n)
       | `I64 n -> Buffer.add_string b (Int64.to_string n)
       | `Str s -> Buffer.add_string b (Printf.sprintf "\"%s\"" (json_escape s)))
    (fields kind);
  Buffer.add_char b '}'

(** One JSON object per line: the raw event stream. *)
let jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
       Buffer.add_string b
         (Printf.sprintf "{\"ts\":%d,\"dur\":%d,\"tid\":%d,\"cat\":\"%s\",\"args\":"
            e.ts e.dur e.tid (category e.kind));
       args_json b e.kind;
       Buffer.add_string b "}\n")
    (events t);
  Buffer.contents b

(** Chrome [trace_event] JSON (open in chrome://tracing or Perfetto):
    spans ([dur > 0]) become complete events, everything else becomes a
    thread-scoped instant; thread-name metadata maps tid 0 to the main
    thread and tid w+1 to worker w. The virtual-cycle clock is reported
    as microseconds, the unit the viewers expect. *)
let chrome_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"traceEvents\":[";
  let evs = events t in
  let tids =
    List.sort_uniq compare (0 :: List.map (fun e -> e.tid) evs)
  in
  List.iteri
    (fun i tid ->
       if i > 0 then Buffer.add_char b ',';
       let name = if tid = 0 then "main" else Printf.sprintf "worker %d" (tid - 1) in
       Buffer.add_string b
         (Printf.sprintf
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\
             \"args\":{\"name\":\"%s\"}}"
            tid name))
    tids;
  List.iter
    (fun e ->
       Buffer.add_char b ',';
       let cat = category e.kind in
       if e.dur > 0 then
         Buffer.add_string b
           (Printf.sprintf
              "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%d,\
               \"dur\":%d,\"pid\":1,\"tid\":%d,\"args\":"
              cat cat e.ts e.dur e.tid)
       else
         Buffer.add_string b
           (Printf.sprintf
              "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\
               \"ts\":%d,\"pid\":1,\"tid\":%d,\"args\":"
              cat cat e.ts e.tid);
       args_json b e.kind;
       Buffer.add_string b "}")
    evs;
  Buffer.add_string b "],\"displayTimeUnit\":\"ns\"}";
  Buffer.contents b

let pp_summary ppf t =
  Fmt.pf ppf "trace: %d events emitted, %d retained, %d dropped (capacity %d)@."
    t.total (min t.total t.capacity) (dropped t) t.capacity;
  (match categories t with
   | [] -> ()
   | cats ->
     Fmt.pf ppf "events by category:@.";
     List.iter (fun (c, n) -> Fmt.pf ppf "  %-20s %10d@." c n) cats);
  (match counters t with
   | [] -> ()
   | cs ->
     Fmt.pf ppf "counters:@.";
     List.iter (fun (k, v) -> Fmt.pf ppf "  %-32s %12d@." k v) cs);
  match hist_summaries t with
  | [] -> ()
  | hs ->
    Fmt.pf ppf "histograms:@.";
    List.iter
      (fun (k, s) ->
         Fmt.pf ppf "  %-32s n=%d min=%d max=%d mean=%.1f@." k s.n
           (if s.n = 0 then 0 else s.min_v)
           (if s.n = 0 then 0 else s.max_v)
           (if s.n = 0 then 0.0 else float_of_int s.sum /. float_of_int s.n))
      hs

(** The last [n] retained events, one per line — the context dumped
    next to runtime error diagnostics (e.g. fuel exhaustion). *)
let trace_tail ?(n = 16) t =
  let evs = events t in
  let len = List.length evs in
  let tail = if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs in
  String.concat "" (List.map (fun e -> Fmt.str "  %a\n" pp_event e) tail)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser (for validating exported traces without         *)
(* external dependencies; used by tests and the CI trace checker)      *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  exception Bad of string

  let parse (s : string) : (v, string) result =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = Stdlib.incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" lit)
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          (match e with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if !pos + 4 > n then fail "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'  (* non-ASCII: placeholder *)
              | None -> fail "bad \\u escape")
           | _ -> fail "bad escape");
          go ()
        | c -> Buffer.add_char b c; go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e'
        || c = 'E'
      in
      while (match peek () with Some c when num_char c -> true | _ -> false) do
        advance ()
      done;
      if !pos = start then fail "expected number";
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    try
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing garbage at offset %d" !pos)
      else Ok v
    with Bad msg -> Error msg

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None
end
