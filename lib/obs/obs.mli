(** janus_obs: low-overhead structured tracing + metrics for the DBM,
    parallel runtime, STM and profiler.

    A {!t} bundles a bounded ring-buffer event trace with a registry of
    named counters and histograms. Tracing is off by default and every
    emission site is expected to guard on {!tracing} before building an
    event, so a disabled tracer costs one boolean load and allocates
    nothing. *)

(** Typed trace events. [tid] conventions: 0 is the main thread,
    [w + 1] is worker [w]. Timestamps are virtual cycles of the
    emitting thread's machine context. *)
type kind =
  | Block_translated of { addr : int; insns : int; trace : bool }
  | Fragment_linked of { addr : int }
  | Cache_flushed
  | Rule_fired of { rule : string; addr : int }
  | Lib_resolved of { name : string; addr : int }
  | Loop_init of { loop_id : int; threads : int; trips : int }
  | Loop_finish of { loop_id : int }
  | Seq_fallback of { loop_id : int }
  | Chunk_dispatched of {
      loop_id : int;
      worker : int;
      iv_start : int64;
      iv_end : int64;
      iters : int;
    }
  | Check_passed of { loop_id : int; pairs : int }
  | Check_failed of { loop_id : int; pairs : int }
  | Tx_started of { addr : int }
  | Tx_committed of { reads : int; writes : int }
  | Tx_aborted of { addr : int }
  | Governor_demoted of { loop_id : int; state : string }
      (** the adaptive governor moved the loop down to [state] *)
  | Governor_promoted of { loop_id : int; state : string }
      (** the adaptive governor moved the loop back up to [state] *)
  | Governor_probe of { loop_id : int }
      (** a demoted loop's periodic parallel probe invocation *)
  | Governor_sample of { loop_id : int; dep : bool }
      (** a training-free dependence-sampling invocation finished *)

type event = { ts : int; dur : int; tid : int; kind : kind }

type t

(** Snake-case category name of an event kind (e.g. ["block_translated"],
    ["tx_abort"]); these are the [cat] strings in the exported JSON. *)
val category : kind -> string

(** Every category name, in a stable order. *)
val all_categories : string list

val pp_event : Format.formatter -> event -> unit

(** [create ()] makes a tracer with tracing {e disabled}. [capacity]
    bounds the ring buffer (default 65536 events); the buffer itself is
    not allocated until the first emission. *)
val create : ?capacity:int -> ?enabled:bool -> unit -> t

val tracing : t -> bool
val set_tracing : t -> bool -> unit

(** [emit t ~tid ~ts kind] appends an event if tracing is enabled,
    overwriting the oldest event once the ring is full. [dur] (cycles)
    turns the event into a span; instants leave it 0. Callers should
    guard with {!tracing} so the [kind] payload is never allocated when
    tracing is off. *)
val emit : t -> tid:int -> ts:int -> ?dur:int -> kind -> unit

(** Retained events, oldest first. *)
val events : t -> event list

(** Events ever emitted (including overwritten ones). *)
val total_events : t -> int

(** Events lost to ring overwrite. *)
val dropped : t -> int

(** Retained (category, count) pairs in {!all_categories} order. *)
val categories : t -> (string * int) list

(** {2 Metrics registry}

    Counters and histograms are independent of tracing: they are cheap
    enough to keep unconditionally on low-frequency paths, and the
    DBM/runtime mirror their aggregate stats into them at publish time
    so derived views (the Fig. 8 breakdown) never perturb hot paths. *)

val incr : t -> ?by:int -> string -> unit
val set : t -> string -> int -> unit
val counter : t -> string -> int

(** All counters, sorted by name. *)
val counters : t -> (string * int) list

(** Record one sample in the named log2-bucketed histogram. *)
val observe : t -> string -> int -> unit

type hist_summary = { n : int; sum : int; min_v : int; max_v : int }

val hist_summaries : t -> (string * hist_summary) list

(** {2 Exporters} *)

(** Human-readable dump: event census, counters, histogram summaries. *)
val pp_summary : Format.formatter -> t -> unit

(** One JSON object per retained event, newline-separated. *)
val jsonl : t -> string

(** Chrome [trace_event] JSON — open in chrome://tracing or Perfetto.
    Spans become ["ph":"X"] complete events, instants ["ph":"i"], with
    thread-name metadata for main/worker rows. *)
val chrome_json : t -> string

(** Last [n] (default 16) retained events, pretty-printed one per line;
    dumped alongside runtime error diagnostics. *)
val trace_tail : ?n:int -> t -> string

(** Minimal JSON parser — just enough to validate exported traces in
    tests and CI without external dependencies. Non-ASCII [\u] escapes
    decode to ['?']. *)
module Json : sig
  type v =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of v list
    | Obj of (string * v) list

  val parse : string -> (v, string) result

  (** [member k (Obj ...)] looks up key [k]; [None] on other values. *)
  val member : string -> v -> v option
end
