(** janus_served: a long-running analysis/schedule service over a unix
    socket.

    The daemon wraps the {!Janus_core.Pipeline} artifact store — in
    memory and, with a persistent directory, on disk — behind a tiny
    length-prefixed RPC protocol, so repeat requests for a binary the
    service has already seen (in this process or any earlier one
    sharing the store directory) are answered from the warm store
    without re-analysis. Artifacts are deterministic functions of their
    content keys, so a warm answer is byte-identical to a cold one.

    The protocol is Marshal payloads behind a magic-and-length frame
    header; the magic embeds the build version, so a client from a
    different build fails cleanly at the first frame instead of
    decoding garbage. The server handles one connection at a time
    (requests are CPU-bound; concurrency comes from the domain pool
    {e inside} a request, not from interleaving requests). *)

module Pipeline = Janus_core.Pipeline
module Schedule = Janus_schedule.Schedule
module Image = Janus_vx.Image
module Obs = Janus_obs.Obs
module Pool = Janus_pool.Pool

(** {1 Replies} *)

type analyse_reply = {
  a_functions : int;
  a_loops : int;
  a_summary : string;     (** {!Janus_analysis.Analysis.pp_summary} text *)
  a_cache_hit : bool;     (** answered without recomputing any artifact *)
}

type schedule_reply = {
  s_schedule : bytes;     (** {!Schedule.to_bytes} of the (verified) schedule *)
  s_demoted : int list;   (** loops the verifier degraded to sequential *)
  s_findings : int;       (** verifier findings of any severity *)
  s_cache_hit : bool;     (** all pipeline artifacts came from the store *)
  s_generation : string;  (** profile-store generation the schedule was
                              derived under; [""] when the daemon holds
                              no evidence for the binary *)
}

type upload_reply = {
  u_image : string;       (** image digest the profile was filed under *)
  u_runs : int;           (** run entries in the uploaded profile *)
  u_total_runs : int;     (** run entries stored for the image after merge *)
}

(** {1 Server} *)

type server

(** [create_server ~socket ()] binds and listens on [socket] (an
    existing socket file at that path is replaced). [store] is the
    artifact store answers come from — give it a persistent directory
    ({!Pipeline.store} [~dir]) to survive restarts; [pool] shards
    per-request analysis and verification; [obs] receives the
    [served.*] and [pipeline.cache.*] counters.

    [profile_dir] opens a persistent fleet-profile store
    ({!Janus_pgo.Pgo.Store}) there: clients push [.jprof] payloads with
    {!upload}, and every schedule request for a binary with stored
    evidence is answered from the merged aggregate
    ({!Janus_core.Pipeline.evidence}) instead of a fresh training
    profile — a restarted daemon keeps answering from everything every
    earlier run uploaded. Adds the [pgo.*] counters. Without
    [profile_dir], behaviour is byte-identical to the pgo-free daemon
    and uploads are refused. *)
val create_server :
  ?store:Pipeline.store ->
  ?pool:Pool.t ->
  ?obs:Obs.t ->
  ?profile_dir:string ->
  socket:string ->
  unit ->
  server

val server_socket : server -> string

(** Current counters: [served.*] request counters plus the store's
    [pipeline.cache.*] and the pool's [pool.*] gauges. *)
val server_metrics : server -> (string * int) list

(** Accept and answer connections until a [Shutdown] request arrives;
    then close the listener, remove the socket file and return. A
    malformed frame or an error while answering closes (or errors to)
    that connection and keeps serving. *)
val serve : server -> unit

(** {1 Client} *)

type connection

val connect : socket:string -> connection
val disconnect : connection -> unit

(** Ask the daemon to analyse [image]. Raises [Failure] on a protocol
    or server-side error. *)
val analyse : connection -> Image.t -> analyse_reply

(** Ask the daemon for a (verified, when [cfg.verify]) rewrite schedule
    for [image]. Raises [Failure] on a protocol or server-side error. *)
val schedule :
  connection ->
  ?cfg:Pipeline.config ->
  ?train_input:int64 list ->
  Image.t ->
  schedule_reply

(** Push a [.jprof] payload ({!Janus_pgo.Pgo.to_bytes}) into the
    daemon's profile store; it is merged with whatever the daemon
    already holds for that binary. Raises [Failure] when the daemon
    was started without [--profile-dir] or the payload is malformed. *)
val upload : connection -> bytes -> upload_reply

val metrics : connection -> (string * int) list

(** Stop the server (it answers, closes and returns from {!serve}). *)
val shutdown : connection -> unit
