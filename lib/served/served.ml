(** The schedule service: framing, request dispatch, warm-store
    answers; see served.mli for the protocol contract. *)

module Pipeline = Janus_core.Pipeline
module Janus = Janus_core.Janus
module Verify = Janus_verify.Verify
module Analysis = Janus_analysis.Analysis
module Cfg = Janus_analysis.Cfg
module Schedule = Janus_schedule.Schedule
module Image = Janus_vx.Image
module Obs = Janus_obs.Obs
module Pool = Janus_pool.Pool
module Pgo = Janus_pgo.Pgo

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

(* The magic embeds the build version: a frame from a different build
   fails the magic comparison before any Marshal decoding happens. *)
let frame_magic = Printf.sprintf "JSRV1/%s\n" Janus_core.Version.version

(* generous bound on one frame: images and schedules are small; a
   length beyond this means a corrupt or hostile header *)
let max_frame = 1 lsl 26

let send_frame oc v =
  let payload = Marshal.to_bytes v [] in
  output_string oc frame_magic;
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Bytes.length payload));
  output_bytes oc hdr;
  output_bytes oc payload;
  flush oc

let recv_frame ic =
  let m = really_input_string ic (String.length frame_magic) in
  if m <> frame_magic then failwith "bad frame magic (version mismatch?)";
  let hdr = Bytes.create 4 in
  really_input ic hdr 0 4;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || len > max_frame then failwith "bad frame length";
  let payload = Bytes.create len in
  really_input ic payload 0 len;
  Marshal.from_bytes payload 0

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

type analyse_reply = {
  a_functions : int;
  a_loops : int;
  a_summary : string;
  a_cache_hit : bool;
}

type schedule_reply = {
  s_schedule : bytes;
  s_demoted : int list;
  s_findings : int;
  s_cache_hit : bool;
  s_generation : string;
}

type upload_reply = { u_image : string; u_runs : int; u_total_runs : int }

(* images travel as [Image.to_bytes] so the decoder — not Marshal —
   validates them on arrival *)
type request =
  | Analyse of { q_image : bytes }
  | Sched of {
      q_image : bytes;
      q_cfg : Pipeline.config;
      q_train_input : int64 list;
    }
  | Upload of { u_profile : bytes }
      (* a [.jprof] payload; the versioned codec — not Marshal —
         validates it on arrival *)
  | Metrics
  | Shutdown

type reply =
  | R_analyse of analyse_reply
  | R_schedule of schedule_reply
  | R_upload of upload_reply
  | R_metrics of (string * int) list
  | R_error of string
  | R_bye

(* ------------------------------------------------------------------ *)
(* Server                                                              *)
(* ------------------------------------------------------------------ *)

type server = {
  socket_path : string;
  store : Pipeline.store;
  pool : Pool.t option;
  obs : Obs.t;
  profiles : Pgo.Store.t option;
  listener : Unix.file_descr;
}

let create_server ?(store = Pipeline.default_store) ?pool
    ?(obs = Obs.create ()) ?profile_dir ~socket () =
  if Sys.file_exists socket then Sys.remove socket;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 16;
  let profiles = Option.map Pgo.Store.open_ profile_dir in
  { socket_path = socket; store; pool; obs; profiles; listener = fd }

let server_socket t = t.socket_path

let server_metrics t =
  Pipeline.publish_metrics t.store t.obs;
  Option.iter (fun p -> Pool.publish_metrics p t.obs) t.pool;
  Option.iter
    (fun ps -> Obs.set t.obs "pgo.store.errors" (Pgo.Store.errors ps))
    t.profiles;
  Obs.counters t.obs

(* Did the work between [before] and now touch anything cold? The
   server answers one request at a time, so a stable miss counter means
   every artifact the request needed came from the warm store. *)
let warm_since t (before : Pipeline.cache_stats) =
  (Pipeline.cache_stats t.store).Pipeline.misses = before.Pipeline.misses

let handle_analyse t q_image =
  let image = Image.of_bytes q_image in
  let before = Pipeline.cache_stats t.store in
  let analysis = Pipeline.analyse ~store:t.store ?pool:t.pool image in
  let hit = warm_since t before in
  if hit then Obs.incr t.obs "served.store_hits";
  R_analyse
    {
      a_functions = List.length (Cfg.all_funcs analysis.Analysis.cfg);
      a_loops = List.length analysis.Analysis.reports;
      a_summary = Fmt.str "%a" Analysis.pp_summary analysis;
      a_cache_hit = hit;
    }

let handle_schedule t q_image q_cfg q_train_input =
  let image = Image.of_bytes q_image in
  let before = Pipeline.cache_stats t.store in
  (* schedule from the fleet aggregate when the profile store holds
     evidence for this binary; the evidence generation enters the
     pipeline's schedule key, so a warm store re-derives exactly when
     the merged evidence shifts *)
  let evidence =
    match t.profiles with
    | None -> None
    | Some ps ->
      Pgo.Store.evidence_for ps ~image:(Pipeline.image_key image)
  in
  if evidence <> None then Obs.incr t.obs "pgo.evidence";
  let p =
    Janus.prepare ~cfg:q_cfg ~train_input:q_train_input ?evidence
      ~store:t.store ?pool:t.pool image
  in
  let hit = warm_since t before in
  if hit then Obs.incr t.obs "served.store_hits";
  (* verification is pure and deterministic, so a warm answer's bytes
     still match a cold one's even though the lint itself is not cached *)
  let schedule, demoted, findings =
    if q_cfg.Pipeline.verify then
      Verify.check_and_demote ?pool:t.pool image p.Janus.p_schedule
    else (p.Janus.p_schedule, [], [])
  in
  R_schedule
    {
      s_schedule = Schedule.to_bytes schedule;
      s_demoted = demoted;
      s_findings = List.length findings;
      s_cache_hit = hit;
      s_generation =
        (match evidence with
        | Some e -> e.Pipeline.ev_generation
        | None -> "");
    }

let handle_upload t u_profile =
  match t.profiles with
  | None -> R_error "janus_served: started without --profile-dir"
  | Some ps ->
    let prof = Pgo.of_bytes u_profile in
    let merged = Pgo.Store.save ps prof in
    Obs.incr t.obs "pgo.ingested";
    Obs.incr t.obs ~by:(Pgo.runs prof) "pgo.runs";
    R_upload
      {
        u_image = prof.Pgo.p_image;
        u_runs = Pgo.runs prof;
        u_total_runs = Pgo.runs merged;
      }

let handle t = function
  | Analyse { q_image } ->
    Obs.incr t.obs "served.analyse";
    handle_analyse t q_image
  | Sched { q_image; q_cfg; q_train_input } ->
    Obs.incr t.obs "served.schedule";
    handle_schedule t q_image q_cfg q_train_input
  | Upload { u_profile } ->
    Obs.incr t.obs "served.upload";
    handle_upload t u_profile
  | Metrics ->
    Obs.incr t.obs "served.metrics";
    R_metrics (server_metrics t)
  | Shutdown -> R_bye

let serve t =
  let stop = ref false in
  while not !stop do
    let client, _ = Unix.accept t.listener in
    Obs.incr t.obs "served.connections";
    let ic = Unix.in_channel_of_descr client in
    let oc = Unix.out_channel_of_descr client in
    (* drain this connection's requests; any framing error or EOF ends
       the connection, never the server *)
    (try
       let connected = ref true in
       while !connected && not !stop do
         match recv_frame ic with
         | exception End_of_file -> connected := false
         | Shutdown ->
           Obs.incr t.obs "served.requests";
           send_frame oc R_bye;
           stop := true
         | req ->
           Obs.incr t.obs "served.requests";
           let reply =
             try handle t req
             with e ->
               Obs.incr t.obs "served.errors";
               R_error (Printexc.to_string e)
           in
           send_frame oc reply
       done
     with _ -> Obs.incr t.obs "served.errors");
    close_out_noerr oc;
    (try close_in_noerr ic with _ -> ())
  done;
  Unix.close t.listener;
  if Sys.file_exists t.socket_path then Sys.remove t.socket_path

(* ------------------------------------------------------------------ *)
(* Client                                                              *)
(* ------------------------------------------------------------------ *)

type connection = { c_ic : in_channel; c_oc : out_channel }

let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  { c_ic = Unix.in_channel_of_descr fd; c_oc = Unix.out_channel_of_descr fd }

let disconnect c =
  close_out_noerr c.c_oc;
  try close_in_noerr c.c_ic with _ -> ()

let rpc c (req : request) : reply =
  send_frame c.c_oc req;
  recv_frame c.c_ic

let fail_reply what = function
  | R_error e -> failwith ("janus_served: " ^ e)
  | _ -> failwith ("janus_served: unexpected reply to " ^ what)

let analyse c image =
  match rpc c (Analyse { q_image = Image.to_bytes image }) with
  | R_analyse r -> r
  | r -> fail_reply "analyse" r

let schedule c ?(cfg = Pipeline.config ()) ?(train_input = []) image =
  match
    rpc c
      (Sched
         { q_image = Image.to_bytes image; q_cfg = cfg;
           q_train_input = train_input })
  with
  | R_schedule r -> r
  | r -> fail_reply "schedule" r

let upload c payload =
  match rpc c (Upload { u_profile = payload }) with
  | R_upload r -> r
  | r -> fail_reply "upload" r

let metrics c =
  match rpc c Metrics with
  | R_metrics m -> m
  | r -> fail_reply "metrics" r

let shutdown c =
  match rpc c Shutdown with R_bye -> () | r -> fail_reply "shutdown" r
