(** Rewrite schedules: the only channel between the static analyser and
    the dynamic binary modifier (§II-A1).

    A schedule is a header, a list of fixed-length rewrite rules sorted
    by trigger address, and a data section of structured descriptors
    that rules reference by byte offset. *)

type channel = Profiling | Parallelisation

type t = {
  channel : channel;
  rules : Rule.t list;   (** sorted by address, stable per address *)
  data : bytes;          (** descriptor pool *)
}

(** {1 Construction} *)

type builder

val builder : channel -> builder
val add_rule : builder -> Rule.t -> unit

(** Store a loop descriptor in the pool, returning the byte offset to
    carry in a rule's [data] field. *)
val add_loop_desc : builder -> Desc.loop_desc -> int

val add_check_desc : builder -> Desc.check_desc -> int
val add_fission_desc : builder -> Desc.fission_desc -> int

(** Finish: sorts rules by address, preserving insertion order within
    one address (transformation order is defined by the analyser,
    §II-A2). *)
val build : builder -> t

(** {1 Queries} *)

val loop_desc : t -> int64 -> Desc.loop_desc
val check_desc : t -> int64 -> Desc.check_desc
val fission_desc : t -> int64 -> Desc.fission_desc

(** Rules indexed by trigger address (the DBM's rule hash table). *)
val index : t -> (int, Rule.t list) Hashtbl.t

(** {1 Serialisation} *)

val to_bytes : t -> bytes
val of_bytes : bytes -> t

(** Schedule size in bytes — the numerator of Fig. 10. *)
val size : t -> int

val pp : Format.formatter -> t -> unit
