(** Structured descriptors carried in the rewrite schedule's data
    section, referenced from rules by byte offset. *)

open Janus_vx

(** Where a loop-carried value lives at the loop boundary. *)
type location =
  | Lreg of Reg.gp
  | Lfreg of Reg.fp
  | Lstack of int   (* byte offset from RSP at the preheader *)
  | Labs of int     (* absolute (global) address *)

(** Reduction combine operation. Each thread starts from the identity
    and the partial results are folded into the main context at
    LOOP_FINISH. *)
type redop = Radd_int | Radd_f64 | Rmul_f64

(** Iteration scheduling policy. [Chunked] and [Round_robin] are the
    paper's DOALL policies (§II-E). [Doacross] is the future-work
    extension for loops with cross-iteration dependences: chunks
    execute in iteration order with context hand-off, overlapping the
    non-carried fraction of the body. *)
type policy =
  | Chunked
  | Round_robin of int  (* block size *)
  | Doacross of int     (* carried fraction in percent, 0-100 *)

type loop_desc = {
  loop_id : int;
  header_addr : int;
  preheader_addr : int;
  exit_addrs : int list;      (* addresses control reaches after the loop *)
  latch_addr : int;           (* address of the back-edge branch *)
  iv : location;
  iv_step : int64;            (* signed step per iteration *)
  iv_cond : Cond.t;           (* loop continues while (iv cond bound) *)
  iv_init : Rexpr.t;          (* evaluated at the preheader *)
  iv_bound : Rexpr.t;
  iv_bound_adjust : int64;    (* the compare tests (iv + adjust) vs bound *)
  policy : policy;
  reductions : (location * redop) list;
  privatised : (Rexpr.t * int) list;  (* scalar address expr, TLS slot *)
  live_out_gps : Reg.gp list;  (* copied back from the last thread *)
  live_out_fps : Reg.fp list;
  frame_copy_bytes : int;      (* stack bytes copied to each private stack *)
}

(** A runtime array-bounds check (Fig. 4): every written range must be
    disjoint from every other accessed range. *)
type array_range = {
  base : Rexpr.t;     (* first byte accessed *)
  extent : Rexpr.t;   (* signed span of first-byte addresses *)
  width : int;        (* widest single access in bytes *)
  written : bool;
}

type check_desc = {
  check_loop_id : int;
  ranges : array_range list;
}

(** One fissioned sub-loop: the body instruction addresses it keeps
    (every other body instruction is skipped during translation) and
    whether the sub-loop is dependence-free, i.e. runs DOALL across
    worker threads rather than as a single-threaded residue. *)
type fission_group = {
  fg_insns : int list;   (* body instruction addresses kept by this group *)
  fg_parallel : bool;    (* DOALL product (true) or sequential residue *)
}

(** A loop-fission rewrite (Aubert et al.): the loop of [fd_loop] is
    distributed into [fd_groups] consecutive full-range sub-loop
    instances. [fd_infra] (induction updates, the governing compare and
    control flow) is replicated into every sub-loop; the groups
    partition the remaining body instructions with no dependence edges
    between groups, so no cross-group temporaries are needed. *)
type fission_desc = {
  fd_loop : loop_desc;
  fd_infra : int list;
  fd_groups : fission_group list;
}

(** Number of pairwise range comparisons the check performs — the
    quantity reported per loop in Table I. *)
let check_pairs c =
  let writes = List.filter (fun r -> r.written) c.ranges in
  let n_writes = List.length writes in
  let n_total = List.length c.ranges in
  (* each written range vs every other range, counting each pair once *)
  (n_writes * (n_total - 1)) - (n_writes * (n_writes - 1) / 2)

(** {1 Serialisation} *)

let write_location buf = function
  | Lreg r ->
    Buffer.add_char buf '\000';
    Buffer.add_char buf (Char.chr (Reg.gp_index r))
  | Lfreg r ->
    Buffer.add_char buf '\001';
    Buffer.add_char buf (Char.chr (Reg.fp_index r))
  | Lstack off ->
    Buffer.add_char buf '\002';
    Buffer.add_int32_le buf (Int32.of_int off)
  | Labs a ->
    Buffer.add_char buf '\003';
    Buffer.add_int32_le buf (Int32.of_int a)

let read_location bytes pos =
  let tag = Char.code (Bytes.get bytes !pos) in
  incr pos;
  match tag with
  | 0 ->
    let r = Reg.gp_of_index (Char.code (Bytes.get bytes !pos)) in
    incr pos;
    Lreg r
  | 1 ->
    let r = Reg.fp_of_index (Char.code (Bytes.get bytes !pos)) in
    incr pos;
    Lfreg r
  | 2 ->
    let v = Int32.to_int (Bytes.get_int32_le bytes !pos) in
    pos := !pos + 4;
    Lstack v
  | 3 ->
    let v = Int32.to_int (Bytes.get_int32_le bytes !pos) in
    pos := !pos + 4;
    Labs v
  | n -> failwith (Printf.sprintf "Desc.read_location: bad tag %d" n)

let redop_to_int = function Radd_int -> 0 | Radd_f64 -> 1 | Rmul_f64 -> 2

let redop_of_int = function
  | 0 -> Radd_int
  | 1 -> Radd_f64
  | 2 -> Rmul_f64
  | n -> failwith (Printf.sprintf "Desc.redop_of_int %d" n)

let write_int buf v = Buffer.add_int32_le buf (Int32.of_int v)

let read_int bytes pos =
  let v = Int32.to_int (Bytes.get_int32_le bytes !pos) in
  pos := !pos + 4;
  v

let write_list buf write_elt l =
  write_int buf (List.length l);
  List.iter (write_elt buf) l

let read_list bytes pos read_elt =
  let n = read_int bytes pos in
  List.init n (fun _ -> read_elt bytes pos)

let write_loop_desc buf d =
  write_int buf d.loop_id;
  write_int buf d.header_addr;
  write_int buf d.preheader_addr;
  write_list buf (fun b a -> write_int b a) d.exit_addrs;
  write_int buf d.latch_addr;
  write_location buf d.iv;
  Buffer.add_int64_le buf d.iv_step;
  Buffer.add_char buf (Char.chr (Cond.to_int d.iv_cond));
  Rexpr.write buf d.iv_init;
  Rexpr.write buf d.iv_bound;
  Buffer.add_int64_le buf d.iv_bound_adjust;
  (match d.policy with
   | Chunked -> Buffer.add_char buf '\000'
   | Round_robin b ->
     Buffer.add_char buf '\001';
     write_int buf b
   | Doacross f ->
     Buffer.add_char buf '\002';
     write_int buf f);
  write_list buf
    (fun b (loc, op) ->
       write_location b loc;
       Buffer.add_char b (Char.chr (redop_to_int op)))
    d.reductions;
  write_list buf
    (fun b (e, slot) ->
       Rexpr.write b e;
       write_int b slot)
    d.privatised;
  write_list buf (fun b r -> Buffer.add_char b (Char.chr (Reg.gp_index r)))
    d.live_out_gps;
  write_list buf (fun b r -> Buffer.add_char b (Char.chr (Reg.fp_index r)))
    d.live_out_fps;
  write_int buf d.frame_copy_bytes

let read_loop_desc bytes pos =
  let loop_id = read_int bytes pos in
  let header_addr = read_int bytes pos in
  let preheader_addr = read_int bytes pos in
  let exit_addrs = read_list bytes pos read_int in
  let latch_addr = read_int bytes pos in
  let iv = read_location bytes pos in
  let iv_step = Bytes.get_int64_le bytes !pos in
  pos := !pos + 8;
  let iv_cond = Cond.of_int (Char.code (Bytes.get bytes !pos)) in
  incr pos;
  let iv_init = Rexpr.read bytes pos in
  let iv_bound = Rexpr.read bytes pos in
  let iv_bound_adjust = Bytes.get_int64_le bytes !pos in
  pos := !pos + 8;
  let policy =
    match Char.code (Bytes.get bytes !pos) with
    | 0 ->
      incr pos;
      Chunked
    | 1 ->
      incr pos;
      Round_robin (read_int bytes pos)
    | 2 ->
      incr pos;
      Doacross (read_int bytes pos)
    | n -> failwith (Printf.sprintf "Desc.read_loop_desc: bad policy %d" n)
  in
  let reductions =
    read_list bytes pos (fun b p ->
        let loc = read_location b p in
        let op = redop_of_int (Char.code (Bytes.get b !p)) in
        incr p;
        (loc, op))
  in
  let privatised =
    read_list bytes pos (fun b p ->
        let e = Rexpr.read b p in
        let slot = read_int b p in
        (e, slot))
  in
  let live_out_gps =
    read_list bytes pos (fun b p ->
        let r = Reg.gp_of_index (Char.code (Bytes.get b !p)) in
        incr p;
        r)
  in
  let live_out_fps =
    read_list bytes pos (fun b p ->
        let r = Reg.fp_of_index (Char.code (Bytes.get b !p)) in
        incr p;
        r)
  in
  let frame_copy_bytes = read_int bytes pos in
  {
    loop_id; header_addr; preheader_addr; exit_addrs; latch_addr; iv;
    iv_step; iv_cond; iv_init; iv_bound; iv_bound_adjust; policy;
    reductions; privatised; live_out_gps; live_out_fps; frame_copy_bytes;
  }

let write_check_desc buf c =
  write_int buf c.check_loop_id;
  write_list buf
    (fun b r ->
       Rexpr.write b r.base;
       Rexpr.write b r.extent;
       Buffer.add_char b (Char.chr r.width);
       Buffer.add_char b (if r.written then '\001' else '\000'))
    c.ranges

let read_check_desc bytes pos =
  let check_loop_id = read_int bytes pos in
  let ranges =
    read_list bytes pos (fun b p ->
        let base = Rexpr.read b p in
        let extent = Rexpr.read b p in
        let width = Char.code (Bytes.get b !p) in
        incr p;
        let written = Char.code (Bytes.get b !p) <> 0 in
        incr p;
        { base; extent; width; written })
  in
  { check_loop_id; ranges }

let write_fission_desc buf f =
  write_loop_desc buf f.fd_loop;
  write_list buf (fun b a -> write_int b a) f.fd_infra;
  write_list buf
    (fun b g ->
       write_list b (fun b a -> write_int b a) g.fg_insns;
       Buffer.add_char b (if g.fg_parallel then '\001' else '\000'))
    f.fd_groups

let read_fission_desc bytes pos =
  let fd_loop = read_loop_desc bytes pos in
  let fd_infra = read_list bytes pos read_int in
  let fd_groups =
    read_list bytes pos (fun b p ->
        let fg_insns = read_list b p read_int in
        let fg_parallel = Char.code (Bytes.get b !p) <> 0 in
        incr p;
        { fg_insns; fg_parallel })
  in
  { fd_loop; fd_infra; fd_groups }
