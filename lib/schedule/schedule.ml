(** A rewrite schedule: header, fixed-length rewrite rules and a data
    section of structured descriptors (§II-A1). This file format is the
    only channel between the static analyser and the dynamic binary
    modifier. *)

type channel = Profiling | Parallelisation

type t = {
  channel : channel;
  rules : Rule.t list;         (* sorted by address *)
  data : bytes;                (* descriptor pool *)
}

let magic = "JRS1"

(** {1 Construction} *)

type builder = {
  mutable brules : Rule.t list;
  pool : Buffer.t;
  bchannel : channel;
}

let builder channel = { brules = []; pool = Buffer.create 256; bchannel = channel }

let add_rule b r = b.brules <- r :: b.brules

(** Store a loop descriptor in the pool; returns its byte offset (to be
    carried in a rule's [data] field). *)
let add_loop_desc b d =
  let off = Buffer.length b.pool in
  Desc.write_loop_desc b.pool d;
  off

let add_check_desc b c =
  let off = Buffer.length b.pool in
  Desc.write_check_desc b.pool c;
  off

let add_fission_desc b f =
  let off = Buffer.length b.pool in
  Desc.write_fission_desc b.pool f;
  off

let build b =
  let rules =
    List.stable_sort (fun a c -> compare a.Rule.addr c.Rule.addr)
      (List.rev b.brules)
  in
  { channel = b.bchannel; rules; data = Buffer.to_bytes b.pool }

(** {1 Queries} *)

let loop_desc t off =
  Desc.read_loop_desc t.data (ref (Int64.to_int off))

let check_desc t off =
  Desc.read_check_desc t.data (ref (Int64.to_int off))

let fission_desc t off =
  Desc.read_fission_desc t.data (ref (Int64.to_int off))

(** Rules indexed by trigger address, preserving schedule order for
    same-address rules (transformation order is defined by the static
    analyser, §II-A2). *)
let index t =
  let tbl = Hashtbl.create (List.length t.rules) in
  List.iter
    (fun r ->
       let existing = try Hashtbl.find tbl r.Rule.addr with Not_found -> [] in
       Hashtbl.replace tbl r.Rule.addr (existing @ [ r ]))
    t.rules;
  tbl

(** {1 Serialisation} *)

let to_bytes t =
  let b = Buffer.create (1024 + List.length t.rules * Rule.record_size) in
  Buffer.add_string b magic;
  Buffer.add_char b (match t.channel with Profiling -> '\000' | Parallelisation -> '\001');
  Buffer.add_int32_le b (Int32.of_int (List.length t.rules));
  Buffer.add_int32_le b (Int32.of_int (Bytes.length t.data));
  List.iter (Rule.write b) t.rules;
  Buffer.add_bytes b t.data;
  Buffer.to_bytes b

let of_bytes bytes =
  let m = Bytes.sub_string bytes 0 4 in
  if not (String.equal m magic) then failwith "Schedule.of_bytes: bad magic";
  let channel =
    match Char.code (Bytes.get bytes 4) with
    | 0 -> Profiling
    | 1 -> Parallelisation
    | n -> failwith (Printf.sprintf "Schedule.of_bytes: bad channel %d" n)
  in
  let nrules = Int32.to_int (Bytes.get_int32_le bytes 5) in
  let data_len = Int32.to_int (Bytes.get_int32_le bytes 9) in
  let rules =
    List.init nrules (fun i -> Rule.read bytes (13 + (i * Rule.record_size)))
  in
  let data = Bytes.sub bytes (13 + (nrules * Rule.record_size)) data_len in
  { channel; rules; data }

(** Schedule size in bytes — the numerator of Fig. 10. *)
let size t = Bytes.length (to_bytes t)

let pp ppf t =
  Fmt.pf ppf "rewrite schedule (%s): %d rules, %d data bytes@."
    (match t.channel with Profiling -> "profiling" | Parallelisation -> "parallelisation")
    (List.length t.rules) (Bytes.length t.data);
  List.iter (fun r -> Fmt.pf ppf "  %a@." Rule.pp r) t.rules
