(** Rewrite rules: the fixed-length records of Fig. 3. Each rule is an
    (address, rule id, data) triple; [data]/[aux] carry rule-specific
    payload — an operand index, a TLS slot, or a byte offset into the
    schedule's data section for structured descriptors. *)

type id =
  (* profiling rules (blue in Fig. 3) *)
  | PROF_LOOP_START
  | PROF_LOOP_FINISH
  | PROF_LOOP_ITER
  | PROF_EXCALL_START
  | PROF_EXCALL_FINISH
  | PROF_MEM_ACCESS
  (* parallelisation rules (orange in Fig. 3) *)
  | THREAD_SCHEDULE
  | THREAD_YIELD
  | LOOP_INIT
  | LOOP_FINISH
  | LOOP_UPDATE_BOUND
  | MEM_MAIN_STACK
  | MEM_PRIVATISE
  | MEM_BOUNDS_CHECK
  | MEM_SPILL_REG
  | MEM_RECOVER_REG
  | TX_START
  | TX_FINISH
  | MEM_PREFETCH
      (* extension (§VII): insert a software-prefetch hint before a
         strided access; data = byte distance ahead of the access *)
  | LOOP_FISSION
      (* extension (Aubert et al.): distribute a statically dependent
         loop into independent sub-loops run as consecutive instances;
         data = byte offset of a fission descriptor, aux = loop id *)

let all_ids =
  [
    PROF_LOOP_START; PROF_LOOP_FINISH; PROF_LOOP_ITER; PROF_EXCALL_START;
    PROF_EXCALL_FINISH; PROF_MEM_ACCESS; THREAD_SCHEDULE; THREAD_YIELD;
    LOOP_INIT; LOOP_FINISH; LOOP_UPDATE_BOUND; MEM_MAIN_STACK;
    MEM_PRIVATISE; MEM_BOUNDS_CHECK; MEM_SPILL_REG; MEM_RECOVER_REG;
    TX_START; TX_FINISH; MEM_PREFETCH; LOOP_FISSION;
  ]

let id_to_int = function
  | PROF_LOOP_START -> 0
  | PROF_LOOP_FINISH -> 1
  | PROF_LOOP_ITER -> 2
  | PROF_EXCALL_START -> 3
  | PROF_EXCALL_FINISH -> 4
  | PROF_MEM_ACCESS -> 5
  | THREAD_SCHEDULE -> 6
  | THREAD_YIELD -> 7
  | LOOP_INIT -> 8
  | LOOP_FINISH -> 9
  | LOOP_UPDATE_BOUND -> 10
  | MEM_MAIN_STACK -> 11
  | MEM_PRIVATISE -> 12
  | MEM_BOUNDS_CHECK -> 13
  | MEM_SPILL_REG -> 14
  | MEM_RECOVER_REG -> 15
  | TX_START -> 16
  | TX_FINISH -> 17
  | MEM_PREFETCH -> 18
  | LOOP_FISSION -> 19

let id_of_int = function
  | 0 -> PROF_LOOP_START
  | 1 -> PROF_LOOP_FINISH
  | 2 -> PROF_LOOP_ITER
  | 3 -> PROF_EXCALL_START
  | 4 -> PROF_EXCALL_FINISH
  | 5 -> PROF_MEM_ACCESS
  | 6 -> THREAD_SCHEDULE
  | 7 -> THREAD_YIELD
  | 8 -> LOOP_INIT
  | 9 -> LOOP_FINISH
  | 10 -> LOOP_UPDATE_BOUND
  | 11 -> MEM_MAIN_STACK
  | 12 -> MEM_PRIVATISE
  | 13 -> MEM_BOUNDS_CHECK
  | 14 -> MEM_SPILL_REG
  | 15 -> MEM_RECOVER_REG
  | 16 -> TX_START
  | 17 -> TX_FINISH
  | 18 -> MEM_PREFETCH
  | 19 -> LOOP_FISSION
  | n -> invalid_arg (Printf.sprintf "Rule.id_of_int %d" n)

let id_name = function
  | PROF_LOOP_START -> "PROF_LOOP_START"
  | PROF_LOOP_FINISH -> "PROF_LOOP_FINISH"
  | PROF_LOOP_ITER -> "PROF_LOOP_ITER"
  | PROF_EXCALL_START -> "PROF_EXCALL_START"
  | PROF_EXCALL_FINISH -> "PROF_EXCALL_FINISH"
  | PROF_MEM_ACCESS -> "PROF_MEM_ACCESS"
  | THREAD_SCHEDULE -> "THREAD_SCHEDULE"
  | THREAD_YIELD -> "THREAD_YIELD"
  | LOOP_INIT -> "LOOP_INIT"
  | LOOP_FINISH -> "LOOP_FINISH"
  | LOOP_UPDATE_BOUND -> "LOOP_UPDATE_BOUND"
  | MEM_MAIN_STACK -> "MEM_MAIN_STACK"
  | MEM_PRIVATISE -> "MEM_PRIVATISE"
  | MEM_BOUNDS_CHECK -> "MEM_BOUNDS_CHECK"
  | MEM_SPILL_REG -> "MEM_SPILL_REG"
  | MEM_RECOVER_REG -> "MEM_RECOVER_REG"
  | TX_START -> "TX_START"
  | TX_FINISH -> "TX_FINISH"
  | MEM_PREFETCH -> "MEM_PREFETCH"
  | LOOP_FISSION -> "LOOP_FISSION"

let is_profiling = function
  | PROF_LOOP_START | PROF_LOOP_FINISH | PROF_LOOP_ITER
  | PROF_EXCALL_START | PROF_EXCALL_FINISH | PROF_MEM_ACCESS -> true
  | THREAD_SCHEDULE | THREAD_YIELD | LOOP_INIT | LOOP_FINISH
  | LOOP_UPDATE_BOUND | MEM_MAIN_STACK | MEM_PRIVATISE | MEM_BOUNDS_CHECK
  | MEM_SPILL_REG | MEM_RECOVER_REG | TX_START | TX_FINISH
  | MEM_PREFETCH | LOOP_FISSION -> false

type t = {
  addr : int;     (* application address where the rule triggers *)
  id : id;
  data : int64;   (* rule-specific payload *)
  aux : int64;    (* secondary payload (fixed-length record, as in §II-A1) *)
}

let make ?(data = 0L) ?(aux = 0L) ~addr id = { addr; id; data; aux }

(** On-disk record size in bytes: addr(4) id(1) data(8) aux(8). *)
let record_size = 21

let write buf r =
  Buffer.add_int32_le buf (Int32.of_int r.addr);
  Buffer.add_char buf (Char.chr (id_to_int r.id));
  Buffer.add_int64_le buf r.data;
  Buffer.add_int64_le buf r.aux

let read bytes off =
  let addr = Int32.to_int (Bytes.get_int32_le bytes off) in
  let id = id_of_int (Char.code (Bytes.get bytes (off + 4))) in
  let data = Bytes.get_int64_le bytes (off + 5) in
  let aux = Bytes.get_int64_le bytes (off + 13) in
  { addr; id; data; aux }

let pp ppf r =
  Fmt.pf ppf "0x%x %s data=%Ld aux=%Ld" r.addr (id_name r.id) r.data r.aux
