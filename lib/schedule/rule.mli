(** Rewrite rules: the fixed-length records of Fig. 3. Each rule is an
    (address, rule id, data) record; [data]/[aux] carry rule-specific
    payload — an operand index, a TLS slot, or a byte offset into the
    schedule's data section. *)

(** The rule identifiers: the 18 of Fig. 3 (six profiling rules,
    twelve parallelisation rules) plus the MEM_PREFETCH and
    LOOP_FISSION extensions. *)
type id =
  | PROF_LOOP_START
  | PROF_LOOP_FINISH
  | PROF_LOOP_ITER
  | PROF_EXCALL_START
  | PROF_EXCALL_FINISH
  | PROF_MEM_ACCESS
  | THREAD_SCHEDULE
  | THREAD_YIELD
  | LOOP_INIT
  | LOOP_FINISH
  | LOOP_UPDATE_BOUND
  | MEM_MAIN_STACK
  | MEM_PRIVATISE
  | MEM_BOUNDS_CHECK
  | MEM_SPILL_REG
  | MEM_RECOVER_REG
  | TX_START
  | TX_FINISH
  | MEM_PREFETCH
      (* extension (§VII): insert a software-prefetch hint before a
         strided access; data = byte distance ahead of the access *)
  | LOOP_FISSION
      (* extension (Aubert et al.): distribute a statically dependent
         loop into independent sub-loops run as consecutive instances;
         data = byte offset of a fission descriptor, aux = loop id *)

val all_ids : id list
val id_to_int : id -> int
val id_of_int : int -> id
val id_name : id -> string
val is_profiling : id -> bool

type t = {
  addr : int;     (** application address where the rule triggers *)
  id : id;
  data : int64;   (** rule-specific payload *)
  aux : int64;    (** secondary payload (fixed-length record, §II-A1) *)
}

val make : ?data:int64 -> ?aux:int64 -> addr:int -> id -> t

(** On-disk record size in bytes. *)
val record_size : int

val write : Buffer.t -> t -> unit
val read : bytes -> int -> t
val pp : Format.formatter -> t -> unit
