(** Structured descriptors carried in the rewrite schedule's data
    section, referenced from rules by byte offset. *)

open Janus_vx

(** Where a loop-carried value lives at the loop boundary. *)
type location =
  | Lreg of Reg.gp
  | Lfreg of Reg.fp
  | Lstack of int   (** byte offset from RSP at the preheader *)
  | Labs of int     (** absolute (global) address *)

(** Reduction combine operation: each thread starts from the identity;
    partial results fold into the main context at LOOP_FINISH. *)
type redop = Radd_int | Radd_f64 | Rmul_f64

(** Iteration scheduling policy. [Chunked] and [Round_robin] are the
    paper's DOALL policies (§II-E); [Doacross] is the future-work
    extension: in-order chunks with context hand-off, carrying the
    given percentage of the body serially. *)
type policy =
  | Chunked
  | Round_robin of int  (** block size *)
  | Doacross of int     (** carried percentage, 0-100 *)

type loop_desc = {
  loop_id : int;
  header_addr : int;
  preheader_addr : int;
  exit_addrs : int list;
  latch_addr : int;
  iv : location;
  iv_step : int64;
  iv_cond : Cond.t;           (** loop continues while (iv cond bound) *)
  iv_init : Rexpr.t;          (** evaluated at loop entry *)
  iv_bound : Rexpr.t;
  iv_bound_adjust : int64;    (** the compare tests (iv + adjust) *)
  policy : policy;
  reductions : (location * redop) list;
  privatised : (Rexpr.t * int) list;  (** scalar address expr, TLS slot *)
  live_out_gps : Reg.gp list;
  live_out_fps : Reg.fp list;
  frame_copy_bytes : int;     (** stack bytes copied per private stack *)
}

(** One array footprint of a runtime bounds check (Fig. 4). *)
type array_range = {
  base : Rexpr.t;     (** first byte accessed *)
  extent : Rexpr.t;   (** signed span of first-byte addresses *)
  width : int;        (** widest single access in bytes *)
  written : bool;
}

type check_desc = {
  check_loop_id : int;
  ranges : array_range list;
}

(** One fissioned sub-loop: the body instruction addresses it keeps
    (all other body instructions are skipped during translation) and
    whether it is dependence-free — a DOALL product — or the
    single-threaded sequential residue. *)
type fission_group = {
  fg_insns : int list;
  fg_parallel : bool;
}

(** A loop-fission rewrite: [fd_loop]'s body is distributed into
    [fd_groups] consecutive full-range sub-loop instances, with
    [fd_infra] (induction updates, governing compare, control flow)
    replicated into every sub-loop. Groups partition the remaining
    body instructions and have no dependence edges between them. *)
type fission_desc = {
  fd_loop : loop_desc;
  fd_infra : int list;
  fd_groups : fission_group list;
}

(** Number of pairwise range comparisons the check performs — the
    quantity reported per loop in Table I. *)
val check_pairs : check_desc -> int

(** {1 Serialisation} *)

val write_location : Buffer.t -> location -> unit
val read_location : bytes -> int ref -> location
val redop_to_int : redop -> int
val redop_of_int : int -> redop
val write_loop_desc : Buffer.t -> loop_desc -> unit
val read_loop_desc : bytes -> int ref -> loop_desc
val write_check_desc : Buffer.t -> check_desc -> unit
val read_check_desc : bytes -> int ref -> check_desc
val write_fission_desc : Buffer.t -> fission_desc -> unit
val read_fission_desc : bytes -> int ref -> fission_desc
