(** The synthetic SPEC CPU2006-like workload suite.

    SPEC CPU2006 is proprietary; each benchmark here is a guest program
    engineered to reproduce the structural properties the paper reports
    for its namesake — loop-class mix (Fig. 6), array-base counts
    (Table I), hot-loop coverage, iteration counts, shared-library
    calls and code-footprint behaviour under the DBM. Programs read one
    integer (the scale), so one binary serves both the training and the
    reference input (§II-C). *)

type benchmark = {
  name : string;          (** SPEC-style name, e.g. ["470.lbm"] *)
  source : string;        (** guest mini-C source *)
  train_scale : int64;    (** profiling input *)
  ref_scale : int64;      (** measurement input *)
  parallelisable : bool;  (** one of the nine benchmarks of Fig. 7 *)
}

(** All 25 benchmarks, in Fig. 6's order. *)
val all : benchmark list

(** Look a benchmark up by its full name (searches {!all} and
    {!adversarial}). *)
val find : string -> benchmark option

(** Like {!find}, but raises [Invalid_argument] naming the missing
    benchmark — use instead of [Option.get (find ...)], whose anonymous
    failure hides which name was wrong. *)
val find_exn : string -> benchmark

(** Compile a benchmark with the given compiler options (default:
    gcc-profile [-O3], as in the paper's main evaluation). *)
val compile :
  ?options:Janus_jcc.Jcc.options -> benchmark -> Janus_vx.Image.t

val train_input : benchmark -> int64 list
val ref_input : benchmark -> int64 list

(** The nine parallelisable benchmarks of Fig. 7. *)
val nine : benchmark list

(** The sixteen benchmarks that appear only in Fig. 6. *)
val sixteen : benchmark list

(** The adversarial pair (not part of the paper's 25, and not in
    {!all}): [adv.alias], whose checked kernel starts aliasing partway
    through the reference run so every later bounds check fails, and
    its well-behaved twin [adv.stable]. Built to evaluate the adaptive
    governor ({!Janus_adapt.Adapt}) on inputs the training run never
    saw. *)
val adversarial : benchmark list

(** [adv.fission] (also findable by name): a Static-Dependence hot loop
    mixing a carried scalar chain with independent streaming writes —
    unsound to parallelise whole, but splittable by loop fission into a
    DOALL product plus a sequential residue. Built to evaluate the
    [~fission] extension; not in {!all} or {!adversarial}. *)
val adv_fission : benchmark

(** Generator for the cold utility code spliced into the benchmarks
    (exposed for tests of the splicing machinery). *)
val with_cold_code : string -> int -> benchmark -> benchmark
