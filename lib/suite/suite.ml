(** The synthetic SPEC CPU2006-like workload suite.

    SPEC CPU2006 is proprietary, so each benchmark here is a guest
    program engineered to reproduce the {e structural} properties the
    paper reports for its namesake: the mix of loop classes (Fig. 6),
    array-base counts behind the bounds checks (Table I), hot-loop
    coverage, iteration counts, shared-library calls, and
    code-footprint behaviour under the DBM. Every program reads one
    integer (the scale) so the same binary runs the small training
    input and the larger reference input, as in §II-C.

    Absolute speedups depend on the cost model; the suite aims to
    reproduce who wins and by roughly what factor (Figs. 7-12). *)

type benchmark = {
  name : string;
  source : string;
  train_scale : int64;
  ref_scale : int64;
  parallelisable : bool;  (* one of the nine benchmarks of Fig. 7 *)
}

(* ------------------------------------------------------------------ *)
(* The nine parallelisable benchmarks (Figs. 7-12)                     *)
(* ------------------------------------------------------------------ *)

(* Real applications carry far more code than their hot loops: cold,
   loop-free utility functions that the DBM never translates but that
   dominate the executable's size (the denominator of Fig. 10). *)
let cold_fn tag k =
  let stmt j =
    Printf.sprintf "  w%d = w%d * %d + w%d - %d;\n" (j mod 6)
      ((j + 1) mod 6) ((k + j) mod 13 + 2) ((j + 3) mod 6) (j mod 7)
  in
  Printf.sprintf "int %s_util%d(int q) {\n\
                 \  int w0 = q; int w1 = q + 1; int w2 = q * 2;\n\
                 \  int w3 = q - 3; int w4 = 7; int w5 = q << 1;\n"
    tag k
  ^ String.concat "" (List.init 40 stmt)
  ^ "  return w0 + w1 + w2 + w3 + w4 + w5;\n}\n"

let cold_code tag n =
  String.concat "" (List.init n (cold_fn tag))

(* splice cold code into a benchmark source: the utility functions are
   prepended, and a guarded dispatch (never taken at runtime, since the
   scale input is positive) is inserted after "int SCALE = read_int();"
   so the functions are reachable program code. *)
let with_cold_code tag n b =
  let marker = " = read_int();" in
  let src = b.source in
  let rec find i =
    if i + String.length marker > String.length src then None
    else if String.equal (String.sub src i (String.length marker)) marker then
      Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> b
  | Some idx ->
    (* the scale variable name ends at [idx]; scan back to its start *)
    let rec var_start j =
      if j > 0 && (src.[j - 1] = '_' || (src.[j - 1] >= 'a' && src.[j - 1] <= 'z')
                   || (src.[j - 1] >= '0' && src.[j - 1] <= '9'))
      then var_start (j - 1)
      else j
    in
    let vs = var_start idx in
    let var = String.sub src vs (idx - vs) in
    let stmt_end = idx + String.length marker in
    let dispatcher =
      Printf.sprintf "int %s_cold(int q) {\n  int r = q;\n" tag
      ^ String.concat ""
          (List.init n (fun k ->
               Printf.sprintf "  r = r + %s_util%d(q + %d);\n" tag k k))
      ^ "  return r;\n}\n"
    in
    let guard =
      Printf.sprintf "\n  if (%s < 0) { %s = %s_cold(%s); }" var var tag var
    in
    {
      b with
      source =
        cold_code tag n ^ dispatcher
        ^ String.sub src 0 stmt_end
        ^ guard
        ^ String.sub src stmt_end (String.length src - stmt_end);
    }

(* 470.lbm: stream/collide over two grids; ~98% of time in two static
   DOALL loops; near-ideal parallel scaling. *)
let lbm =
  {
    name = "470.lbm";
    parallelisable = true;
    train_scale = 4L;
    ref_scale = 24L;
    source =
      "double src[6002]; double dst[6002]; double edge[16];\n\
       int main() {\n\
       \  int steps = read_int();\n\
       \  int n = 6000;\n\
       \  for (int i = 0; i < 6002; i++) { src[i] = (double)(i % 29) * 0.1; }\n\
       \  double omega = 0.6;\n\
       \  for (int t = 0; t < steps; t++) {\n\
       \    for (int i = 1; i <= n; i++) {\n\
       \      double v = (src[i-1] + src[i] + src[i+1]) * 0.3333 * omega\n\
       \                 + src[i] * (1.0 - omega);\n\
       \      if (v > 50.0) { v = 50.0; }\n\
       \      dst[i] = v;\n\
       \    }\n\
       \    for (int i = 1; i <= n; i++) { src[i] = dst[i]; }\n\
       \    /* boundary exchange substeps: static DOALL but only 16\n\
       \       iterations, invoked many times per step */\n\
       \    for (int sub = 0; sub < 6; sub++) {\n\
       \      for (int b = 0; b < 16; b++) { edge[b] = src[b + 1] * 0.5; }\n\
       \      for (int b = 0; b < 16; b++) { src[b + 1] = edge[b] * 2.0; }\n\
       \    }\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i < 6002; i++) { check += src[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 462.libquantum: gate applications over an amplitude vector; one
   dominant static DOALL loop with statically known counts. *)
let libquantum =
  {
    name = "462.libquantum";
    parallelisable = true;
    train_scale = 3L;
    ref_scale = 16L;
    source =
      "double re[8192]; double im[8192]; double phase[32];\n\
       int main() {\n\
       \  int gates = read_int();\n\
       \  for (int i = 0; i < 8192; i++) {\n\
       \    re[i] = (double)(i % 17) * 0.25;\n\
       \    im[i] = (double)(i % 13) * 0.125;\n\
       \  }\n\
       \  double c = 0.992; double s = 0.126;\n\
       \  for (int g = 0; g < gates; g++) {\n\
       \    for (int i = 0; i < 8192; i++) {\n\
       \      double r = re[i] * c - im[i] * s;\n\
       \      double m = re[i] * s + im[i] * c;\n\
       \      /* controlled gate: only amplitudes with the control bit set */\n\
       \      if ((i & 4) != 0) { r = r * 0.999; }\n\
       \      re[i] = r;\n\
       \      im[i] = m;\n\
       \    }\n\
       \    /* per-gate phase-table refreshes: 32 iterations only,\n\
       \       repeated per gate - cheap serially, costly to fork */\n\
       \    for (int sub = 0; sub < 8; sub++) {\n\
       \      for (int k = 0; k < 32; k++) { phase[k] = (double)k * 0.01 + c; }\n\
       \      for (int k = 0; k < 32; k++) { phase[k] = phase[k] * 0.5 + 0.1; }\n\
       \    }\n\
       \  }\n\
       \  double norm = 0.0;\n\
       \  for (int i = 0; i < 8192; i++) { norm += re[i] * re[i] + im[i] * im[i]; }\n\
       \  print_float(norm + phase[3]);\n\
       \  return 0;\n\
       }";
  }

(* 410.bwaves: flux kernel over pointer-passed arrays with a pow() call
   in the hot loop: dynamic DOALL needing one bounds check plus
   speculation on the shared-library call (§II-E3). *)
let bwaves =
  {
    name = "410.bwaves";
    parallelisable = true;
    train_scale = 300L;
    ref_scale = 2200L;
    source =
      "extern double pow(double, double);\n\
       void flux(double *q, double *f, int n) {\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    f[i] = pow(q[i], 8.0) * 0.02 + q[i] * 1.4;\n\
       \  }\n\
       }\n\
       void update(double *q, double *f, int n) {\n\
       \  for (int i = 1; i < n; i++) { q[i] = q[i] - (f[i] - f[i-1]) * 0.01; }\n\
       }\n\
       int main() {\n\
       \  int n = read_int();\n\
       \  double *q = alloc_double(n + 1);\n\
       \  double *f = alloc_double(n + 1);\n\
       \  for (int i = 0; i <= n; i++) { q[i] = 1.0 + (double)(i % 11) * 0.05; }\n\
       \  for (int t = 0; t < 6; t++) {\n\
       \    flux(q, f, n);\n\
       \    update(q, f, n);\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i <= n; i++) { check += q[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 459.GemsFDTD: field updates over six pointer-passed component arrays
   (many bounds-check pairs, Table I: 19.5 avg), plus tiny-trip static
   DOALL loops that make unprofiled static parallelisation lose time. *)
let gemsfdtd =
  {
    name = "459.GemsFDTD";
    parallelisable = true;
    train_scale = 150L;
    ref_scale = 1100L;
    source =
      "double tinybuf[16];\n\
       void update_e(double *ex, double *ey, double *ez,\n\
       \             double *hx, double *hy, double *hz,\n\
       \             double *ca, double *cb, int n) {\n\
       \  for (int i = 1; i < n; i++) {\n\
       \    ex[i] = ex[i] * ca[i] + (hz[i] - hy[i-1]) * cb[i];\n\
       \    ey[i] = ey[i] * ca[i] + (hx[i] - hz[i-1]) * cb[i];\n\
       \    ez[i] = ez[i] * ca[i] + (hy[i] - hx[i-1]) * cb[i];\n\
       \  }\n\
       }\n\
       void update_h(double *ex, double *ey, double *ez,\n\
       \             double *hx, double *hy, double *hz,\n\
       \             double *ca, double *cb, int n) {\n\
       \  for (int i = 1; i < n; i++) {\n\
       \    hx[i] = hx[i] * ca[i] - (ez[i] - ey[i-1]) * cb[i];\n\
       \    hy[i] = hy[i] * ca[i] - (ex[i] - ez[i-1]) * cb[i];\n\
       \    hz[i] = hz[i] * ca[i] - (ey[i] - ex[i-1]) * cb[i];\n\
       \  }\n\
       }\n\
       int main() {\n\
       \  int n = read_int();\n\
       \  double *ex = alloc_double(n + 1); double *ey = alloc_double(n + 1);\n\
       \  double *ez = alloc_double(n + 1); double *hx = alloc_double(n + 1);\n\
       \  double *hy = alloc_double(n + 1); double *hz = alloc_double(n + 1);\n\
       \  double *ca = alloc_double(n + 1); double *cb = alloc_double(n + 1);\n\
       \  for (int i = 0; i <= n; i++) {\n\
       \    ex[i] = (double)(i % 7) * 0.1; ey[i] = (double)(i % 5) * 0.2;\n\
       \    ez[i] = (double)(i % 3) * 0.3; hx[i] = 0.0; hy[i] = 0.0; hz[i] = 0.0;\n\
       \    ca[i] = 0.98; cb[i] = 0.4 + (double)(i % 2) * 0.05;\n\
       \  }\n\
       \  for (int t = 0; t < 8; t++) {\n\
       \    update_e(ex, ey, ez, hx, hy, hz, ca, cb, n);\n\
       \    update_h(ex, ey, ez, hx, hy, hz, ca, cb, n);\n\
       \    /* boundary fix-ups: statically DOALL but only 16 iterations,\n\
       \       invoked every step - a trap for unprofiled selection */\n\
       \    for (int b = 0; b < 16; b++) { tinybuf[b] = ex[b] * 0.5; }\n\
       \    for (int b = 0; b < 16; b++) { ex[b] = ex[b] + tinybuf[b] * 0.001; }\n\
       \    /* absorbing boundary: serial sweeps with carried state */\n\
       \    double abc = 0.0;\n\
       \    for (int i = 1; i < n; i++) {\n\
       \      abc = abc * 0.4 + ey[i] * 0.1 / (hz[i] * hz[i] + 1.0);\n\
       \      ey[i] = ey[i] - abc * 0.001;\n\
       \    }\n\
       \    for (int i = n - 2; i > 0; i = i - 1) {\n\
       \      abc = abc * 0.3 + hx[i] * 0.05 / (ex[i] * ex[i] + 1.0);\n\
       \      hx[i] = hx[i] - abc * 0.001;\n\
       \    }\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i <= n; i++) { check += ex[i] + hy[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 433.milc: su3-like small-matrix kernels: many short-trip loops over
   pointer arrays invoked at high frequency; parallelisation overhead
   roughly cancels the gains. *)
let milc =
  {
    name = "433.milc";
    parallelisable = true;
    train_scale = 60L;
    ref_scale = 400L;
    source =
      "void su3mul(double *ar, double *ai, double *br, double *bi,\n\
       \           double *cr, double *ci, int n) {\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    cr[i] = cr[i] + ar[i] * br[i] - ai[i] * bi[i];\n\
       \    ci[i] = ci[i] + ar[i] * bi[i] + ai[i] * br[i];\n\
       \  }\n\
       }\n\
       int main() {\n\
       \  int sites = read_int();\n\
       \  int n = 48;\n\
       \  double *ar = alloc_double(n); double *ai = alloc_double(n);\n\
       \  double *br = alloc_double(n); double *bi = alloc_double(n);\n\
       \  double *cr = alloc_double(n); double *ci = alloc_double(n);\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    ar[i] = (double)(i % 9) * 0.3; ai[i] = (double)(i % 5) * 0.11;\n\
       \    br[i] = (double)(i % 4) * 0.7; bi[i] = (double)(i % 3) * 0.21;\n\
       \    cr[i] = 0.0; ci[i] = 0.0;\n\
       \  }\n\
       \  double acc = 0.0;\n\
       \  for (int s = 0; s < sites; s++) {\n\
       \    su3mul(ar, ai, br, bi, cr, ci, n);\n\
       \    /* serial gather between kernels */\n\
       \    for (int i = 1; i < n; i++) { cr[i] = cr[i] + cr[i-1] * 0.001; }\n\
       \    acc += cr[n - 1] + ci[n - 1];\n\
       \    acc = acc * 0.9999;\n\
       \  }\n\
       \  print_float(acc);\n\
       \  return 0;\n\
       }";
  }

(* 436.cactusADM: one staggered-grid relaxation over three pointer
   arrays (3 check ranges); about half the time is parallel. *)
let cactusadm =
  {
    name = "436.cactusADM";
    parallelisable = true;
    train_scale = 300L;
    ref_scale = 900L;
    source =
      "void relax(double *u, double *v, double *rhs, int n) {\n\
       \  for (int i = 1; i < n; i++) {\n\
       \    v[i] = (u[i-1] + u[i+1]) * 0.5 + rhs[i] * 0.25;\n\
       \  }\n\
       }\n\
       int main() {\n\
       \  int n = read_int();\n\
       \  double *u = alloc_double(n + 2);\n\
       \  double *v = alloc_double(n + 2);\n\
       \  double *rhs = alloc_double(n + 2);\n\
       \  for (int i = 0; i <= n + 1; i++) {\n\
       \    u[i] = (double)(i % 23) * 0.04;\n\
       \    rhs[i] = (double)(i % 6) * 0.02;\n\
       \  }\n\
       \  double residual = 0.0;\n\
       \  for (int t = 0; t < 10; t++) {\n\
       \    relax(u, v, rhs, n);\n\
       \    /* serial half: update sweep with a carried recurrence */\n\
       \    residual = 0.0;\n\
       \    for (int i = 1; i < n; i++) {\n\
       \      residual = residual * 0.5 + (v[i] - u[i]) * 0.125;\n\
       \      u[i] = v[i] + residual * 0.0001;\n\
       \    }\n\
       \  }\n\
       \  print_float(u[n / 2] + residual);\n\
       \  return 0;\n\
       }";
  }

(* 437.leslie3d: mostly small irregular loops (low trip counts, carried
   scalars); static-only parallelisation loses time, Janus roughly
   breaks even. *)
let leslie3d =
  {
    name = "437.leslie3d";
    parallelisable = true;
    train_scale = 12L;
    ref_scale = 60L;
    source =
      "double flx[258]; double cons[258];\n\
       int main() {\n\
       \  int sweeps = read_int();\n\
       \  int n = 256;\n\
       \  for (int i = 0; i < 258; i++) { cons[i] = (double)(i % 8) * 0.2; }\n\
       \  double total = 0.0;\n\
       \  for (int s = 0; s < sweeps; s++) {\n\
       \    /* short DOALL: only 32 iterations, invoked every sweep */\n\
       \    for (int i = 0; i < n; i++) { flx[i] = cons[i] * 1.2 + 0.1; }\n\
       \    /* upwind recurrence: statically dependent */\n\
       \    for (int i = 1; i < n; i++) { cons[i] = cons[i-1] * 0.1 + flx[i]; }\n\
       \    /* convergence scan with a data-dependent break */\n\
       \    for (int i = 0; i < n; i++) {\n\
       \      if (cons[i] > 1000.0) { break; }\n\
       \      total += cons[i] * 0.001;\n\
       \    }\n\
       \  }\n\
       \  print_float(total);\n\
       \  return 0;\n\
       }";
  }

(* 464.h264ref: a very large code footprint (many distinct kernels,
   each executed only a few times) with branchy inner loops: the DBM's
   translation and indirect-branch costs dominate and cannot be
   recovered (§III-B reports a 32% DynamoRIO slowdown and a final 24%
   loss). *)
let h264ref_fn k =
  let stmt j =
    match (k + j) mod 5 with
    | 0 -> Printf.sprintf "  t%d = t%d * 3 + blk[%d];\n" (j mod 8) ((j + 1) mod 8) ((k * 7 + j) mod 256)
    | 1 -> Printf.sprintf "  t%d = (t%d >> 1) + %d;\n" (j mod 8) ((j + 3) mod 8) (k + j)
    | 2 -> Printf.sprintf "  if (t%d > 10000) { t%d = t%d - 9000; }\n" (j mod 8) (j mod 8) (j mod 8)
    | 3 -> Printf.sprintf "  t%d = t%d ^ (t%d & 1023);\n" (j mod 8) ((j + 2) mod 8) ((j + 5) mod 8)
    | _ -> Printf.sprintf "  t%d = t%d + t%d;\n" (j mod 8) ((j + 1) mod 8) ((j + 4) mod 8)
  in
  Printf.sprintf
    "int mode%d(int q) {\n\
    \  int t0 = q; int t1 = q + 1; int t2 = %d; int t3 = q * 3;\n\
    \  int t4 = q - 2; int t5 = %d; int t6 = q << 2; int t7 = 5;\n"
    k (k * 13 mod 97) (k * 29 mod 83)
  ^ String.concat "" (List.init 36 stmt)
  ^ "  int acc = 0;\n\
    \  for (int i = 0; i < 12; i++) {\n\
    \    acc += blk[(i + t0) % 256];\n\
    \    if (acc > 60000) { break; }\n\
    \  }\n\
    \  return acc + t0 + t1 + t2 + t3 + t4 + t5 + t6 + t7;\n\
     }\n"

let h264ref =
  {
    name = "464.h264ref";
    parallelisable = true;
    train_scale = 2L;
    ref_scale = 7L;
    source =
      "int blk[256];\n"
      ^ String.concat "" (List.init 110 h264ref_fn)
      ^ "int main() {\n\
        \  int frames = read_int();\n\
        \  for (int i = 0; i < 256; i++) { blk[i] = i * 7 % 251; }\n\
        \  int best = 0;\n\
        \  for (int f = 0; f < frames; f++) {\n"
      ^ String.concat ""
          (List.init 110 (fun k ->
               Printf.sprintf "    best = best + mode%d(f + %d);\n" k k))
      ^ "  }\n\
        \  int *ip = alloc_int(256);\n\
        \  int *rp = alloc_int(256);\n\
        \  int *pp = alloc_int(256);\n\
        \  for (int i = 0; i < 256; i++) { rp[i] = blk[i]; pp[i] = blk[255 - i]; }\n\
        \  for (int f = 0; f < frames * 12; f++) {\n\
        \    for (int i = 0; i < 256; i++) { ip[i] = (rp[i] + pp[i] + 1) >> 1; }\n\
        \    best += ip[f % 256];\n\
        \  }\n\
        \  print_int(best);\n\
        \  return 0;\n\
        }";
  }

(* 482.sphinx3: one parallel gaussian-scoring loop (~40%% of time) in an
   otherwise serial search: Amdahl-limited to a small speedup. *)
let sphinx3 =
  {
    name = "482.sphinx3";
    parallelisable = true;
    train_scale = 30L;
    ref_scale = 170L;
    source =
      "double mean[2048]; double var[2048]; double score[2048];\n\
       int best_idx[512];\n\
       int main() {\n\
       \  int frames = read_int();\n\
       \  for (int i = 0; i < 2048; i++) {\n\
       \    mean[i] = (double)(i % 19) * 0.1;\n\
       \    var[i] = 1.0 + (double)(i % 7) * 0.05;\n\
       \  }\n\
       \  double total = 0.0;\n\
       \  for (int f = 0; f < frames; f++) {\n\
       \    double x = (double)(f % 13) * 0.2;\n\
       \    /* gaussian scoring: static DOALL, the parallel part */\n\
       \    for (int i = 0; i < 2048; i++) {\n\
       \      double d = x - mean[i];\n\
       \      score[i] = d * d / var[i];\n\
       \    }\n\
       \    /* serial search: argmin scan with carried state */\n\
       \    double best = 1000000.0;\n\
       \    int arg = 0;\n\
       \    for (int i = 0; i < 2048; i++) {\n\
       \      if (score[i] < best) { best = score[i]; arg = i; }\n\
       \    }\n\
       \    /* serial language-model smoothing: carried recurrences */\n\
       \    double lm = best;\n\
       \    for (int i = 1; i < 2048; i++) {\n\
       \      lm = lm * 0.6 + score[i] * 0.2 + score[i-1] * 0.2;\n\
       \      score[i] = score[i] + lm * 0.0001;\n\
       \    }\n\
       \    for (int i = 2046; i > 0; i = i - 1) {\n\
       \      lm = lm * 0.7 + score[i] * 0.3 / (var[i] + 0.5);\n\
       \    }\n\
       \    best_idx[f % 512] = arg;\n\
       \    total += best;\n\
       \  }\n\
       \  print_float(total);\n\
       \  print_int(best_idx[0]);\n\
       \  return 0;\n\
       }";
  }

(* pad the small FP binaries with realistic cold code (h264ref already
   models a large translated footprint and stays as-is) *)
let bwaves = with_cold_code "bw" 12 bwaves
let milc = with_cold_code "milc" 10 milc
let cactusadm = with_cold_code "cactus" 12 cactusadm
let leslie3d = with_cold_code "leslie" 10 leslie3d
let gemsfdtd = with_cold_code "gems" 14 gemsfdtd
let libquantum = with_cold_code "libq" 10 libquantum
let lbm = with_cold_code "lbm" 12 lbm
let sphinx3 = with_cold_code "sphinx" 10 sphinx3

let nine =
  [ bwaves; milc; cactusadm; leslie3d; gemsfdtd; libquantum; h264ref; lbm;
    sphinx3 ]

(* ------------------------------------------------------------------ *)
(* The sixteen non-parallelisable benchmarks (Fig. 6 only)             *)
(* ------------------------------------------------------------------ *)

(* 400.perlbench: an opcode-dispatch interpreter: data-dependent
   control flow, IO inside loops, carried interpreter state. *)
let perlbench =
  {
    name = "400.perlbench";
    parallelisable = false;
    train_scale = 40L;
    ref_scale = 250L;
    source =
      "int code[256]; int stack[64];\n\
       int main() {\n\
       \  int iters = read_int();\n\
       \  for (int i = 0; i < 256; i++) { code[i] = (i * 31 + 7) % 5; }\n\
       \  int sp = 0; int acc = 0;\n\
       \  for (int r = 0; r < iters; r++) {\n\
       \    int pc = 0;\n\
       \    while (pc < 256) {\n\
       \      int op = code[pc];\n\
       \      if (op == 0) { acc = acc + pc; }\n\
       \      if (op == 1) { acc = acc * 3 % 65536; }\n\
       \      if (op == 2) { stack[sp % 64] = acc; sp = sp + 1; }\n\
       \      if (op == 3) { if (sp > 0) { sp = sp - 1; acc = acc + stack[sp % 64]; } }\n\
       \      if (op == 4) { if (acc % 7 == 0) { pc = pc + 2; } }\n\
       \      pc = pc + 1;\n\
       \    }\n\
       \  }\n\
       \  print_int(acc);\n\
       \  print_int(sp);\n\
       \  return 0;\n\
       }";
  }

(* 401.bzip2: move-to-front / prefix-sum style carried loops with a
   modest block-copy DOALL fraction. *)
let bzip2 =
  {
    name = "401.bzip2";
    parallelisable = false;
    train_scale = 12L;
    ref_scale = 70L;
    source =
      "int buf[1024]; int freq[256]; int out[1024];\n\
       int main() {\n\
       \  int blocks = read_int();\n\
       \  for (int i = 0; i < 1024; i++) { buf[i] = (i * 131 + 17) % 256; }\n\
       \  int checksum = 0;\n\
       \  for (int b = 0; b < blocks; b++) {\n\
       \    /* histogram: reduction into a table indexed by data (dep) */\n\
       \    for (int i = 0; i < 256; i++) { freq[i] = 0; }\n\
       \    for (int i = 0; i < 1024; i++) { freq[buf[i]] = freq[buf[i]] + 1; }\n\
       \    /* prefix sum: carried */\n\
       \    for (int i = 1; i < 256; i++) { freq[i] = freq[i] + freq[i-1]; }\n\
       \    /* block copy with transform: DOALL */\n\
       \    for (int i = 0; i < 1024; i++) { out[i] = buf[i] * 2 + 1; }\n\
       \    checksum = checksum + out[b % 1024] + freq[255];\n\
       \  }\n\
       \  print_int(checksum);\n\
       \  return 0;\n\
       }";
  }

(* 403.gcc: irregular tree-walking with index-linked nodes. *)
let gcc_bench =
  {
    name = "403.gcc";
    parallelisable = false;
    train_scale = 30L;
    ref_scale = 160L;
    source =
      "int left[512]; int right[512]; int val[512];\n\
       int main() {\n\
       \  int passes = read_int();\n\
       \  for (int i = 0; i < 512; i++) {\n\
       \    left[i] = (i * 2 + 1) % 512;\n\
       \    right[i] = (i * 2 + 2) % 512;\n\
       \    val[i] = i % 97;\n\
       \  }\n\
       \  int sum = 0;\n\
       \  for (int p = 0; p < passes; p++) {\n\
       \    int node = p % 512;\n\
       \    int depth = 0;\n\
       \    while (depth < 200) {\n\
       \      sum = sum + val[node];\n\
       \      if (sum % 3 == 0) { node = left[node]; } else { node = right[node]; }\n\
       \      depth = depth + 1;\n\
       \    }\n\
       \  }\n\
       \  print_int(sum);\n\
       \  return 0;\n\
       }";
  }

(* 429.mcf: network-simplex style arc scans over index-linked lists. *)
let mcf =
  {
    name = "429.mcf";
    parallelisable = false;
    train_scale = 25L;
    ref_scale = 140L;
    source =
      "int next[600]; int cost[600]; int flow[600];\n\
       int main() {\n\
       \  int rounds = read_int();\n\
       \  for (int i = 0; i < 600; i++) {\n\
       \    next[i] = (i * 7 + 3) % 600;\n\
       \    cost[i] = i % 13 - 6;\n\
       \    flow[i] = 0;\n\
       \  }\n\
       \  int total = 0;\n\
       \  for (int r = 0; r < rounds; r++) {\n\
       \    int a = r % 600;\n\
       \    int hops = 0;\n\
       \    while (hops < 300) {\n\
       \      flow[a] = flow[a] + cost[a];\n\
       \      total = total + flow[a];\n\
       \      a = next[a];\n\
       \      hops = hops + 1;\n\
       \    }\n\
       \  }\n\
       \  print_int(total);\n\
       \  return 0;\n\
       }";
  }

(* 434.zeusmp: hydro stencils over global grids: a large static DOALL
   fraction with some carried boundary sweeps. *)
let zeusmp =
  {
    name = "434.zeusmp";
    parallelisable = false;
    train_scale = 6L;
    ref_scale = 30L;
    source =
      "double d[2050]; double e[2050]; double v[2050];\n\
       int main() {\n\
       \  int steps = read_int();\n\
       \  for (int i = 0; i < 2050; i++) {\n\
       \    d[i] = 1.0 + (double)(i % 9) * 0.1;\n\
       \    e[i] = (double)(i % 5) * 0.2;\n\
       \  }\n\
       \  for (int t = 0; t < steps; t++) {\n\
       \    for (int i = 1; i < 2049; i++) { v[i] = (e[i+1] - e[i-1]) / d[i]; }\n\
       \    for (int i = 1; i < 2049; i++) { e[i] = e[i] + v[i] * 0.01; }\n\
       \    /* carried donor-cell sweep */\n\
       \    for (int i = 1; i < 2049; i++) { d[i] = d[i-1] * 0.001 + d[i] * 0.999; }\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i < 2050; i++) { check += e[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 435.gromacs: a pairwise force loop over pointer-passed coordinates
   (dynamic DOALL) plus a carried integration sweep, and one kernel
   invoked with genuinely overlapping arguments (dynamic dependence). *)
let gromacs =
  {
    name = "435.gromacs";
    parallelisable = false;
    train_scale = 10L;
    ref_scale = 60L;
    source =
      "void forces(double *x, double *f, int n) {\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    double r = x[i] - 0.5;\n\
       \    f[i] = r * r * 24.0 - r * 12.0;\n\
       \  }\n\
       }\n\
       void shift(double *dst, double *src, int n) {\n\
       \  for (int i = 0; i < n; i++) { dst[i] = src[i + 1] * 0.5; }\n\
       }\n\
       int main() {\n\
       \  int steps = read_int();\n\
       \  int n = 800;\n\
       \  double *x = alloc_double(n + 2);\n\
       \  double *f = alloc_double(n + 2);\n\
       \  for (int i = 0; i < n + 2; i++) { x[i] = (double)(i % 101) * 0.01; }\n\
       \  for (int t = 0; t < steps; t++) {\n\
       \    forces(x, f, n);\n\
       \    /* leapfrog: carried through x */\n\
       \    for (int i = 1; i < n; i++) { x[i] = x[i] + f[i] * 0.0001 + x[i-1] * 0.00001; }\n\
       \    /* neighbour shift called in place: aliases at runtime */\n\
       \    shift(x, x, n);\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i < n; i++) { check += x[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 444.namd: force loops with cutoff tests and early exits: mostly
   unanalysable iterators. *)
let namd =
  {
    name = "444.namd";
    parallelisable = false;
    train_scale = 8L;
    ref_scale = 45L;
    source =
      "double pos[1024]; double force[1024];\n\
       int main() {\n\
       \  int steps = read_int();\n\
       \  for (int i = 0; i < 1024; i++) { pos[i] = (double)(i % 37) * 0.1; }\n\
       \  double energy = 0.0;\n\
       \  for (int t = 0; t < steps; t++) {\n\
       \    int i = 0;\n\
       \    while (i < 1024) {\n\
       \      double r = pos[i] - 1.8;\n\
       \      if (r < 0.0) { r = -r; }\n\
       \      if (r > 3.0) { i = i + 2; } else {\n\
       \        force[i] = 1.0 / (r + 0.1);\n\
       \        energy += force[i];\n\
       \        i = i + 1;\n\
       \      }\n\
       \    }\n\
       \    for (int k = 0; k < 1024; k++) {\n\
       \      if (force[k] > 100.0) { break; }\n\
       \      pos[k] = pos[k] + force[k] * 0.001;\n\
       \    }\n\
       \  }\n\
       \  print_float(energy);\n\
       \  return 0;\n\
       }";
  }

(* 445.gobmk: board-scanning game search with IO and early exits. *)
let gobmk =
  {
    name = "445.gobmk";
    parallelisable = false;
    train_scale = 15L;
    ref_scale = 80L;
    source =
      "int board[361]; int libs[361];\n\
       int main() {\n\
       \  int moves = read_int();\n\
       \  for (int i = 0; i < 361; i++) { board[i] = (i * 17 + 5) % 3; }\n\
       \  int score = 0;\n\
       \  for (int m = 0; m < moves; m++) {\n\
       \    for (int i = 1; i < 360; i++) {\n\
       \      int n = 0;\n\
       \      if (board[i-1] == 0) { n = n + 1; }\n\
       \      if (board[i+1] == 0) { n = n + 1; }\n\
       \      libs[i] = n;\n\
       \    }\n\
       \    int best = -1; int arg = 0;\n\
       \    for (int i = 0; i < 361; i++) {\n\
       \      if (board[i] == 0 && libs[i] > best) { best = libs[i]; arg = i; }\n\
       \    }\n\
       \    board[arg] = 1 + m % 2;\n\
       \    score = score + best;\n\
       \    if (m % 10 == 0) { print_int(score); }\n\
       \  }\n\
       \  print_int(score);\n\
       \  return 0;\n\
       }";
  }

(* 447.dealII: iterator-driven traversals (the STL pattern the paper
   flags): no recognisable affine induction. *)
let dealii =
  {
    name = "447.dealII";
    parallelisable = false;
    train_scale = 15L;
    ref_scale = 90L;
    source =
      "int nxt[700]; double cell[700];\n\
       int main() {\n\
       \  int sweeps = read_int();\n\
       \  for (int i = 0; i < 700; i++) {\n\
       \    nxt[i] = (i + 13) % 700;\n\
       \    cell[i] = (double)(i % 11) * 0.3;\n\
       \  }\n\
       \  double norm = 0.0;\n\
       \  for (int s = 0; s < sweeps; s++) {\n\
       \    int it = s % 700;\n\
       \    int visited = 0;\n\
       \    while (visited < 350) {\n\
       \      cell[it] = cell[it] * 0.99 + 0.01;\n\
       \      norm += cell[it];\n\
       \      it = nxt[it];\n\
       \      visited = visited + 1;\n\
       \    }\n\
       \  }\n\
       \  print_float(norm);\n\
       \  return 0;\n\
       }";
  }

(* 450.soplex: simplex pivoting: carried ratio tests with a small
   DOALL column update. *)
let soplex =
  {
    name = "450.soplex";
    parallelisable = false;
    train_scale = 12L;
    ref_scale = 70L;
    source =
      "double tab[900]; double col[900];\n\
       int main() {\n\
       \  int pivots = read_int();\n\
       \  for (int i = 0; i < 900; i++) { tab[i] = (double)(i % 19) * 0.15 + 0.1; }\n\
       \  double obj = 0.0;\n\
       \  for (int p = 0; p < pivots; p++) {\n\
       \    /* ratio test: carried min */\n\
       \    double best = 100000.0;\n\
       \    for (int i = 0; i < 900; i++) {\n\
       \      if (tab[i] > 0.001 && tab[i] < best) { best = tab[i]; }\n\
       \    }\n\
       \    /* column elimination: DOALL */\n\
       \    for (int i = 0; i < 900; i++) { col[i] = tab[i] - best * 0.5; }\n\
       \    /* writeback with carried scaling */\n\
       \    for (int i = 1; i < 900; i++) { tab[i] = col[i] + tab[i-1] * 0.0001; }\n\
       \    obj += best;\n\
       \  }\n\
       \  print_float(obj);\n\
       \  return 0;\n\
       }";
  }

(* 453.povray: ray marching with data-dependent exits plus a small
   shading DOALL. *)
let povray =
  {
    name = "453.povray";
    parallelisable = false;
    train_scale = 20L;
    ref_scale = 110L;
    source =
      "double depth[400]; double shade[400];\n\
       int main() {\n\
       \  int rays = read_int();\n\
       \  double t0 = 0.0;\n\
       \  for (int r = 0; r < rays; r++) {\n\
       \    /* march: data-dependent exit */\n\
       \    double t = 0.1;\n\
       \    int steps = 0;\n\
       \    while (steps < 220) {\n\
       \      t = t * 1.02 + 0.003;\n\
       \      if (t > 9.0) { break; }\n\
       \      steps = steps + 1;\n\
       \    }\n\
       \    depth[r % 400] = t;\n\
       \    t0 += t;\n\
       \    /* shading pass over the tile: DOALL */\n\
       \    if (r % 50 == 0) {\n\
       \      for (int i = 0; i < 400; i++) { shade[i] = depth[i] * 0.8 + 0.2; }\n\
       \    }\n\
       \  }\n\
       \  print_float(t0 + shade[7]);\n\
       \  return 0;\n\
       }";
  }

(* 454.calculix: an assembly-style gather with indexed writes (dynamic
   dependence when indices collide) plus a solver DOALL. *)
let calculix =
  {
    name = "454.calculix";
    parallelisable = false;
    train_scale = 8L;
    ref_scale = 45L;
    source =
      "double k[1200]; double u[1200]; double rhs[1200]; int idx[1200];\n\
       int main() {\n\
       \  int iters = read_int();\n\
       \  for (int i = 0; i < 1200; i++) {\n\
       \    k[i] = 1.0 + (double)(i % 7) * 0.1;\n\
       \    idx[i] = (i * 37) % 1200;\n\
       \    u[i] = 0.0;\n\
       \  }\n\
       \  for (int t = 0; t < iters; t++) {\n\
       \    /* indexed scatter: indices collide across iterations */\n\
       \    for (int i = 0; i < 1200; i++) { rhs[idx[i]] = rhs[idx[i]] + k[i]; }\n\
       \    /* jacobi update: DOALL */\n\
       \    for (int i = 0; i < 1200; i++) { u[i] = rhs[i] / k[i] * 0.5; }\n\
       \    /* relaxation: carried */\n\
       \    for (int i = 1; i < 1200; i++) { rhs[i] = rhs[i] * 0.9 + rhs[i-1] * 0.05; }\n\
       \  }\n\
       \  double check = 0.0;\n\
       \  for (int i = 0; i < 1200; i++) { check += u[i]; }\n\
       \  print_float(check);\n\
       \  return 0;\n\
       }";
  }

(* 456.hmmer: Viterbi-style dynamic programming: the hot loop is a
   carried recurrence. *)
let hmmer =
  {
    name = "456.hmmer";
    parallelisable = false;
    train_scale = 10L;
    ref_scale = 60L;
    source =
      "double vit[1500]; double trans[1500]; double emit[1500];\n\
       int main() {\n\
       \  int seqs = read_int();\n\
       \  for (int i = 0; i < 1500; i++) {\n\
       \    trans[i] = (double)(i % 5) * 0.1 + 0.1;\n\
       \    emit[i] = (double)(i % 9) * 0.05;\n\
       \  }\n\
       \  double score = 0.0;\n\
       \  for (int s = 0; s < seqs; s++) {\n\
       \    vit[0] = 1.0;\n\
       \    for (int i = 1; i < 1500; i++) {\n\
       \      double stay = vit[i-1] * trans[i];\n\
       \      double move = vit[i-1] * emit[i];\n\
       \      if (move > stay) { vit[i] = move; } else { vit[i] = stay; }\n\
       \    }\n\
       \    score += vit[1499];\n\
       \  }\n\
       \  print_float(score);\n\
       \  return 0;\n\
       }";
  }

(* 458.sjeng: alpha-beta-like search over a move table with pruning. *)
let sjeng =
  {
    name = "458.sjeng";
    parallelisable = false;
    train_scale = 12L;
    ref_scale = 70L;
    source =
      "int moves[512]; int hist[512];\n\
       int main() {\n\
       \  int nodes = read_int();\n\
       \  for (int i = 0; i < 512; i++) { moves[i] = (i * 41 + 11) % 201 - 100; }\n\
       \  int alpha = -10000;\n\
       \  int visited = 0;\n\
       \  for (int n = 0; n < nodes; n++) {\n\
       \    int best = -10000;\n\
       \    for (int m = 0; m < 512; m++) {\n\
       \      int sc = moves[(m + n) % 512] + hist[m] % 16;\n\
       \      if (sc > best) { best = sc; }\n\
       \      if (best > 95) { break; }\n\
       \      visited = visited + 1;\n\
       \    }\n\
       \    hist[n % 512] = hist[n % 512] + best;\n\
       \    if (best > alpha) { alpha = best; }\n\
       \  }\n\
       \  print_int(alpha);\n\
       \  print_int(visited);\n\
       \  return 0;\n\
       }";
  }

(* 473.astar: grid path scanning with open-list style carried state. *)
let astar =
  {
    name = "473.astar";
    parallelisable = false;
    train_scale = 15L;
    ref_scale = 85L;
    source =
      "int gcost[900]; int came[900];\n\
       int main() {\n\
       \  int searches = read_int();\n\
       \  for (int i = 0; i < 900; i++) { gcost[i] = 1000000; came[i] = 0; }\n\
       \  int found = 0;\n\
       \  for (int s = 0; s < searches; s++) {\n\
       \    gcost[s % 900] = 0;\n\
       \    int cur = s % 900;\n\
       \    int expanded = 0;\n\
       \    while (expanded < 400) {\n\
       \      int nb = (cur * 13 + 7) % 900;\n\
       \      int cand = gcost[cur] + 1 + cur % 3;\n\
       \      if (cand < gcost[nb]) { gcost[nb] = cand; came[nb] = cur; }\n\
       \      cur = nb;\n\
       \      expanded = expanded + 1;\n\
       \    }\n\
       \    found = found + came[s % 900];\n\
       \  }\n\
       \  print_int(found);\n\
       \  return 0;\n\
       }";
  }

(* 483.xalancbmk: string/tree processing: almost entirely irregular,
   with one per-document cleanup loop (the 1% DOALL of Fig. 6). *)
let xalancbmk =
  {
    name = "483.xalancbmk";
    parallelisable = false;
    train_scale = 12L;
    ref_scale = 70L;
    source =
      "int tag[800]; int parent[800]; int scratch[64];\n\
       int main() {\n\
       \  int docs = read_int();\n\
       \  for (int i = 0; i < 800; i++) {\n\
       \    tag[i] = (i * 29 + 3) % 7;\n\
       \    parent[i] = (i * 5 + 1) % 800;\n\
       \  }\n\
       \  int matched = 0;\n\
       \  for (int d = 0; d < docs; d++) {\n\
       \    /* template matching: pointer-chase up the tree */\n\
       \    for (int n = 0; n < 800; n++) {\n\
       \      int cur = n;\n\
       \      int depth = 0;\n\
       \      while (depth < 12) {\n\
       \        if (tag[cur] == 3) { matched = matched + 1; break; }\n\
       \        cur = parent[cur];\n\
       \        depth = depth + 1;\n\
       \      }\n\
       \    }\n\
       \    /* tiny cleanup: the 1%% DOALL */\n\
       \    for (int i = 0; i < 64; i++) { scratch[i] = d + i; }\n\
       \    matched = matched + scratch[d % 64];\n\
       \  }\n\
       \  print_int(matched);\n\
       \  return 0;\n\
       }";
  }

(* ------------------------------------------------------------------ *)
(* Adversarial pair (not in the paper's 25): reference inputs that     *)
(* betray the training run, built for the adaptive governor's          *)
(* evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* adv.alias: a Dynamic-class pointer kernel whose call sites are
   disjoint throughout training (and the first 48 reference
   invocations), then alias for the rest of the run: [kernel(b, b, n)]
   makes the write to [dst[i+1]] a genuine carried dependence on the
   read of [src[i]], so every later bounds check fails and a static
   schedule pays check + cache-flush + sequential fallback on
   invocation after invocation — exactly the pathology an online
   governor should demote away. *)
let adv_alias =
  {
    name = "adv.alias";
    parallelisable = false;
    train_scale = 40L;
    ref_scale = 250L;
    source =
      "void kernel(double *src, double *dst, int n) {\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    dst[i + 1] = src[i] * 0.5 + dst[i + 1] * 0.25;\n\
       \  }\n\
       }\n\
       int main() {\n\
       \  int iters = read_int();\n\
       \  int n = 480;\n\
       \  double *a = alloc_double(n + 1);\n\
       \  double *b = alloc_double(n + 1);\n\
       \  for (int i = 0; i <= n; i++) {\n\
       \    a[i] = (double)(i % 7) * 0.25;\n\
       \    b[i] = (double)(i % 5) * 0.5;\n\
       \  }\n\
       \  double acc = 0.0;\n\
       \  for (int t = 0; t < iters; t++) {\n\
       \    if (t < 48) { kernel(a, b, n); } else { kernel(b, b, n); }\n\
       \    acc = acc * 0.5 + b[n] + b[n / 2];\n\
       \  }\n\
       \  print_float(acc);\n\
       \  return 0;\n\
       }";
  }

(* adv.stable: adv.alias's well-behaved twin — the same kernel and
   invocation count, but the call sites stay disjoint, so every check
   passes and the governor should never leave the Parallel state. The
   pair bounds the governor's overhead on loops that behave. *)
let adv_stable =
  {
    name = "adv.stable";
    parallelisable = false;
    train_scale = 40L;
    ref_scale = 250L;
    source =
      "void kernel(double *src, double *dst, int n) {\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    dst[i + 1] = src[i] * 0.5 + dst[i + 1] * 0.25;\n\
       \  }\n\
       }\n\
       int main() {\n\
       \  int iters = read_int();\n\
       \  int n = 480;\n\
       \  double *a = alloc_double(n + 1);\n\
       \  double *b = alloc_double(n + 1);\n\
       \  for (int i = 0; i <= n; i++) {\n\
       \    a[i] = (double)(i % 7) * 0.25;\n\
       \    b[i] = (double)(i % 5) * 0.5;\n\
       \  }\n\
       \  double acc = 0.0;\n\
       \  for (int t = 0; t < iters; t++) {\n\
       \    kernel(a, b, n);\n\
       \    acc = acc * 0.5 + b[n] + b[n / 2];\n\
       \  }\n\
       \  print_float(acc);\n\
       \  return 0;\n\
       }";
  }

(* adv.fission: a Static-Dependence hot loop whose body mixes a genuine
   carried scalar chain (s = s*3 + a[i], not a recognised reduction:
   the multiply poisons the associativity argument) with streaming
   writes to an unrelated array. Whole-loop parallelisation is unsound,
   but the dependence graph splits into a carried component (the chain)
   and a carried-free one (the stream), so fission can run the stream
   as a DOALL product and the chain as a sequential residue. *)
let adv_fission =
  {
    name = "adv.fission";
    parallelisable = false;
    train_scale = 6L;
    ref_scale = 40L;
    source =
      "int a[2048]; int b[2048]; int c[2048];\n\
       int main() {\n\
       \  int reps = read_int();\n\
       \  int n = 2048;\n\
       \  for (int i = 0; i < n; i++) {\n\
       \    a[i] = (i * 7 + 3) % 101;\n\
       \    b[i] = 0;\n\
       \    c[i] = (i * 5 + 1) % 97;\n\
       \  }\n\
       \  int s = 1;\n\
       \  for (int t = 0; t < reps; t++) {\n\
       \    for (int i = 0; i < 2048; i++) {\n\
       \      s = s * 3 + a[i];\n\
       \      b[i] = c[i] * 2 + t;\n\
       \    }\n\
       \  }\n\
       \  print_int(s);\n\
       \  print_int(b[5]);\n\
       \  print_int(b[2000]);\n\
       \  return 0;\n\
       }";
  }

let adversarial = [ adv_alias; adv_stable ]

let sixteen =
  [ perlbench; bzip2; gcc_bench; mcf; zeusmp; gromacs; namd; gobmk; dealii;
    soplex; povray; calculix; hmmer; sjeng; astar; xalancbmk ]

(** All 25 benchmarks in the paper's Fig. 6 order. *)
let all =
  [ perlbench; bzip2; gcc_bench; bwaves; mcf; milc; zeusmp; gromacs;
    cactusadm; leslie3d; namd; gobmk; dealii; soplex; povray; calculix;
    hmmer; sjeng; gemsfdtd; libquantum; h264ref; lbm; astar; sphinx3;
    xalancbmk ]

let find name =
  List.find_opt
    (fun b -> String.equal b.name name)
    (all @ adversarial @ [ adv_fission ])

let find_exn name =
  match find name with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Suite.find_exn: no benchmark named %S" name)

(** Compile a benchmark with the given compiler options. *)
let compile ?(options = Janus_jcc.Jcc.default_options) b =
  Janus_jcc.Jcc.compile ~options b.source

let train_input b = [ b.train_scale ]
let ref_input b = [ b.ref_scale ]
