(* Online adaptive loop governor. See adapt.mli for the model.

   Everything here is driven by the main thread between invocations:
   no locks, no wall-clock time, no randomness — transitions depend
   only on counters and virtual cycles, which is what keeps adaptive
   runs bit-identical across --jobs levels and schedule-cache states. *)

module Obs = Janus_obs.Obs
module Machine = Janus_vm.Machine
module Layout = Janus_vx.Layout
module Profiler = Janus_profile.Profiler

type params = {
  window : int;
  demote_k : int;
  promote_k : int;
  probe_period : int;
  sample_n : int;
  gain_pct : int;
}

(* Defaults tuned for the suite's invocation counts: a pathological
   loop is off the parallel path within ~5 invocations, and a demoted
   loop costs one probe every 16 invocations to keep re-promotion
   possible. *)
let default_params =
  { window = 8; demote_k = 3; promote_k = 3; probe_period = 16;
    sample_n = 3; gain_pct = 100 }

type state = Parallel | Probation | Sequential | Sampling

let state_name = function
  | Parallel -> "parallel"
  | Probation -> "probation"
  | Sequential -> "sequential"
  | Sampling -> "sampling"

let state_code = function
  | Parallel -> 0 | Probation -> 1 | Sequential -> 2 | Sampling -> 3

type decision = Go_parallel | Go_probe | Go_sequential | Go_sample

type ledger = {
  lid : int;
  mutable st : state;
  mutable invocations : int;
  mutable par_invocations : int;
  mutable seq_invocations : int;
  mutable probes : int;
  mutable samples : int;
  mutable fallbacks : int;
  mutable checks_passed : int;
  mutable checks_failed : int;
  mutable check_cycles : int;
  mutable commits : int;
  mutable aborts : int;
  mutable par_work : int;
  mutable par_cost : int;
  mutable seq_cycles : int;
  mutable demotions : int;
  mutable promotions : int;
  mutable sampled_dep : bool;
  (* per-invocation decision cache: MEM_BOUNDS_CHECK fires before
     LOOP_INIT, so the decision is computed at whichever hook runs
     first and consumed at LOOP_INIT *)
  mutable pending : decision option;
  mutable since_probe : int;
  mutable good_streak : int;
  (* ring of recent parallel outcomes (true = good) in Parallel state *)
  outcomes : bool array;
  mutable outcome_n : int;
  mutable outcome_i : int;
  mutable bad_in_window : int;
  shadow : Profiler.Shadow.t;
  mutable observing : bool;
}

type t = {
  p : params;
  obs : Obs.t option;
  loops : (int, ledger) Hashtbl.t;
}

let create ?(params = default_params) ?obs () =
  { p = params; obs; loops = Hashtbl.create 16 }

let params t = t.p

let emit t ~now kind =
  match t.obs with
  | Some o when Obs.tracing o -> Obs.emit o ~tid:0 ~ts:now kind
  | _ -> ()

let fresh p lid st =
  { lid; st; invocations = 0; par_invocations = 0; seq_invocations = 0;
    probes = 0; samples = 0; fallbacks = 0; checks_passed = 0;
    checks_failed = 0; check_cycles = 0; commits = 0; aborts = 0;
    par_work = 0; par_cost = 0; seq_cycles = 0; demotions = 0;
    promotions = 0; sampled_dep = false; pending = None; since_probe = 0;
    good_streak = 0; outcomes = Array.make (max 1 p.window) true;
    outcome_n = 0; outcome_i = 0; bad_in_window = 0;
    shadow = Profiler.Shadow.create (); observing = false }

let register t lid ~profiled =
  if not (Hashtbl.mem t.loops lid) then begin
    let st =
      if (not profiled) && t.p.sample_n > 0 then Sampling else Parallel
    in
    Hashtbl.add t.loops lid (fresh t.p lid st)
  end

(* Warm start from aggregated fleet history: a loop other runs already
   demoted (or watched fail its checks) begins on probation — one more
   bad outcome demotes it, [promote_k] good ones restore full parallel
   standing. The prior is only a starting state; every later decision
   is the usual pure function of this run's cycles and counters. *)
let register_suspect t lid =
  if not (Hashtbl.mem t.loops lid) then
    Hashtbl.add t.loops lid (fresh t.p lid Probation)

let find t lid = Hashtbl.find_opt t.loops lid
let governed t lid = Hashtbl.mem t.loops lid
let state t lid = Option.map (fun l -> l.st) (find t lid)

(* Rolling-window bookkeeping ------------------------------------- *)

let clear_window l =
  l.outcome_n <- 0;
  l.outcome_i <- 0;
  l.bad_in_window <- 0;
  l.good_streak <- 0

let push_outcome l good =
  let w = Array.length l.outcomes in
  if l.outcome_n = w then begin
    if not l.outcomes.(l.outcome_i) then
      l.bad_in_window <- l.bad_in_window - 1
  end else l.outcome_n <- l.outcome_n + 1;
  l.outcomes.(l.outcome_i) <- good;
  if not good then l.bad_in_window <- l.bad_in_window + 1;
  l.outcome_i <- (l.outcome_i + 1) mod w

(* Transitions ----------------------------------------------------- *)

let demote t l ~now to_ =
  l.st <- to_;
  l.demotions <- l.demotions + 1;
  clear_window l;
  if to_ = Sequential then l.since_probe <- 0;
  emit t ~now (Obs.Governor_demoted { loop_id = l.lid; state = state_name to_ })

let promote t l ~now to_ =
  l.st <- to_;
  l.promotions <- l.promotions + 1;
  clear_window l;
  emit t ~now (Obs.Governor_promoted { loop_id = l.lid; state = state_name to_ })

(* Fold one finished parallel invocation (or fallback) into the
   policy. In Sequential state the invocation was necessarily a probe. *)
let record_outcome t l ~now ~good =
  match l.st with
  | Sequential -> if good then promote t l ~now Probation
  | Parallel ->
    push_outcome l good;
    if l.bad_in_window >= t.p.demote_k then demote t l ~now Probation
  | Probation ->
    if not good then demote t l ~now Sequential
    else begin
      l.good_streak <- l.good_streak + 1;
      if l.good_streak >= t.p.promote_k then promote t l ~now Parallel
    end
  | Sampling -> ()

(* Decisions ------------------------------------------------------- *)

let next_decision t l =
  match l.st with
  | Parallel | Probation -> Go_parallel
  | Sampling -> Go_sample
  | Sequential ->
    l.since_probe <- l.since_probe + 1;
    if l.since_probe >= t.p.probe_period then begin
      l.since_probe <- 0;
      Go_probe
    end else Go_sequential

let skip_check t lid =
  match find t lid with
  | None -> false
  | Some l ->
    let d =
      match l.pending with
      | Some d -> d
      | None ->
        let d = next_decision t l in
        l.pending <- Some d;
        d
    in
    (match d with Go_sequential | Go_sample -> true | Go_parallel | Go_probe -> false)

let decide t lid ~now =
  match find t lid with
  | None -> Go_parallel
  | Some l ->
    l.invocations <- l.invocations + 1;
    let d =
      match l.pending with
      | Some d -> l.pending <- None; d
      | None -> next_decision t l
    in
    (match d with
     | Go_probe ->
       l.probes <- l.probes + 1;
       emit t ~now (Obs.Governor_probe { loop_id = lid })
     | Go_parallel | Go_sequential | Go_sample -> ());
    d

(* Ledger feeds ---------------------------------------------------- *)

let record_check t lid ~ok ~cycles =
  match find t lid with
  | None -> ()
  | Some l ->
    if ok then l.checks_passed <- l.checks_passed + 1
    else l.checks_failed <- l.checks_failed + 1;
    l.check_cycles <- l.check_cycles + cycles

let record_parallel t lid ~now ~work ~cost ~commits ~aborts =
  match find t lid with
  | None -> ()
  | Some l ->
    l.par_invocations <- l.par_invocations + 1;
    l.commits <- l.commits + commits;
    l.aborts <- l.aborts + aborts;
    l.par_work <- l.par_work + work;
    l.par_cost <- l.par_cost + cost;
    let good =
      aborts <= commits && work * 100 >= cost * t.p.gain_pct
    in
    record_outcome t l ~now ~good

let record_fallback t lid ~now =
  match find t lid with
  | None -> ()
  | Some l ->
    l.fallbacks <- l.fallbacks + 1;
    record_outcome t l ~now ~good:false

let record_seq t lid ~cycles =
  match find t lid with
  | None -> ()
  | Some l ->
    l.seq_invocations <- l.seq_invocations + 1;
    l.seq_cycles <- l.seq_cycles + cycles

(* Training-free sampling ------------------------------------------ *)

let sample_begin t lid ctx ~read_iv ~exclude =
  match find t lid with
  | None -> ()
  | Some l ->
    (match ctx.Machine.observe with
     | Some _ -> ()  (* someone else (offline profiler) owns the hook *)
     | None ->
       Profiler.Shadow.reset l.shadow;
       l.observing <- true;
       ctx.Machine.observe <-
         Some (fun rw ~addr ~bytes ->
             if addr >= Layout.data_base && addr < Layout.heap_limit
                && not (List.exists
                          (fun e -> e >= addr && e < addr + bytes)
                          exclude)
             then
               Profiler.Shadow.access l.shadow
                 ~iter:(Int64.to_int (read_iv ()))
                 ~addr ~bytes ~write:(rw = Machine.Write)))

let sample_end t lid ctx ~now =
  match find t lid with
  | None -> ()
  | Some l ->
    if l.observing then begin
      ctx.Machine.observe <- None;
      l.observing <- false;
      l.samples <- l.samples + 1;
      let dep = Profiler.Shadow.found l.shadow in
      if dep then l.sampled_dep <- true;
      emit t ~now (Obs.Governor_sample { loop_id = lid; dep });
      (* One observed dependence is conclusive; otherwise keep sampling
         until the budget is spent, then commit to parallel. *)
      if l.sampled_dep then demote t l ~now Sequential
      else if l.samples >= t.p.sample_n then promote t l ~now Parallel
    end

(* Reporting ------------------------------------------------------- *)

type loop_stats = {
  loop_id : int;
  final : state;
  invocations : int;
  par_invocations : int;
  seq_invocations : int;
  probes : int;
  samples : int;
  fallbacks : int;
  checks_passed : int;
  checks_failed : int;
  check_cycles : int;
  commits : int;
  aborts : int;
  par_work : int;
  par_cost : int;
  seq_cycles : int;
  demotions : int;
  promotions : int;
  sampled_dep : bool;
}

let snapshot t =
  Hashtbl.fold
    (fun _ l acc ->
       { loop_id = l.lid; final = l.st; invocations = l.invocations;
         par_invocations = l.par_invocations;
         seq_invocations = l.seq_invocations; probes = l.probes;
         samples = l.samples; fallbacks = l.fallbacks;
         checks_passed = l.checks_passed; checks_failed = l.checks_failed;
         check_cycles = l.check_cycles; commits = l.commits;
         aborts = l.aborts; par_work = l.par_work; par_cost = l.par_cost;
         seq_cycles = l.seq_cycles; demotions = l.demotions;
         promotions = l.promotions; sampled_dep = l.sampled_dep }
       :: acc)
    t.loops []
  |> List.sort (fun a b -> compare a.loop_id b.loop_id)

let publish_metrics t obs =
  let snaps = snapshot t in
  let tot f = List.fold_left (fun acc s -> acc + f s) 0 snaps in
  Obs.set obs "adapt.loops" (List.length snaps);
  Obs.set obs "adapt.demotions" (tot (fun s -> s.demotions));
  Obs.set obs "adapt.promotions" (tot (fun s -> s.promotions));
  Obs.set obs "adapt.probes" (tot (fun s -> s.probes));
  Obs.set obs "adapt.samples" (tot (fun s -> s.samples));
  Obs.set obs "adapt.seq_invocations" (tot (fun s -> s.seq_invocations));
  Obs.set obs "adapt.fallbacks" (tot (fun s -> s.fallbacks));
  List.iter
    (fun s ->
       let key k = Printf.sprintf "adapt.loop.%d.%s" s.loop_id k in
       Obs.set obs (key "state") (state_code s.final);
       Obs.set obs (key "invocations") s.invocations;
       Obs.set obs (key "demotions") s.demotions;
       Obs.set obs (key "promotions") s.promotions;
       Obs.set obs (key "probes") s.probes;
       Obs.set obs (key "samples") s.samples;
       Obs.set obs (key "seq_invocations") s.seq_invocations)
    snaps

let pp_report ppf t =
  let snaps = snapshot t in
  Format.fprintf ppf "adaptive governor: %d loop(s) governed@."
    (List.length snaps);
  if snaps <> [] then begin
    Format.fprintf ppf
      "%6s %-10s %6s %6s %6s %6s %5s %5s %6s %6s %7s %7s %7s %7s@." "loop"
      "state" "inv" "par" "seq" "probe" "samp" "fb" "chk+" "chk-" "commit"
      "abort" "demote" "promote";
    List.iter
      (fun s ->
         Format.fprintf ppf
           "%6d %-10s %6d %6d %6d %6d %5d %5d %6d %6d %7d %7d %7d %7d@."
           s.loop_id (state_name s.final) s.invocations s.par_invocations
           s.seq_invocations s.probes s.samples s.fallbacks s.checks_passed
           s.checks_failed s.commits s.aborts s.demotions s.promotions)
      snaps;
    List.iter
      (fun s ->
         if s.samples > 0 then
           Format.fprintf ppf
             "loop %d: training-free sample of %d invocation(s) -> %s@."
             s.loop_id s.samples
             (if s.sampled_dep then "cross-iteration dependence, sequential"
              else if s.final = Sampling then
                "no dependence yet (budget not exhausted)"
              else "no dependence, parallel"))
      snaps
  end
