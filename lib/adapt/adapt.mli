(** janus_adapt: online adaptive loop governor.

    Janus classifies loops offline (static analysis + a training-run
    profile, Fig. 1a of the paper), so a deployed schedule keeps paying
    bounds-check, init/finish and STM-abort costs on loops that
    misbehave under the real input — the sequential-fallback path
    (§II-E2) fires invocation after invocation with no memory. The
    governor closes that gap at run time: a per-loop ledger is fed from
    the runtime's existing hook sites (the same places that emit
    [janus_obs] events), and a policy engine with rolling windows and
    hysteresis moves each loop through [Parallel -> Probation ->
    Sequential] and back, demoting pathological loops after a few bad
    invocations and probing demoted loops periodically so they can be
    re-promoted when the input regime shifts.

    {b Training-free mode}: a Dynamic-class loop deployed without a
    [.jpf] profile starts in {!Sampling}: its first [sample_n]
    invocations run sequentially under the memory-dependence profiler's
    shadow word-map ({!Janus_profile.Profiler.Shadow}) as an online
    sample, after which the governor commits the loop to parallel or
    sequential execution.

    Every decision is a pure function of virtual cycles and counters,
    so runs are bit-identical across [--jobs] levels and cold/warm
    schedule caches. *)

module Obs = Janus_obs.Obs
module Machine = Janus_vm.Machine

(** Policy knobs. All arithmetic is integer-only for determinism. *)
type params = {
  window : int;       (** rolling window of recent parallel outcomes *)
  demote_k : int;     (** bad outcomes within [window] that demote *)
  promote_k : int;    (** consecutive good outcomes that re-promote *)
  probe_period : int; (** sequential invocations between probes *)
  sample_n : int;     (** training-free sample invocations *)
  gain_pct : int;     (** parallel is "good" when
                          [work * 100 >= cost * gain_pct] *)
}

val default_params : params

type state =
  | Parallel     (** run the schedule as emitted *)
  | Probation    (** recently demoted or freshly probed: one more bad
                     outcome falls to [Sequential], [promote_k] good
                     ones restore [Parallel] *)
  | Sequential   (** checks skipped, loop runs sequentially; probed
                     every [probe_period] invocations *)
  | Sampling     (** training-free: observing under shadow memory *)

val state_name : state -> string

(** What the governor wants for one invocation. *)
type decision =
  | Go_parallel    (** follow the schedule (checks, chunking, STM) *)
  | Go_probe       (** as [Go_parallel], but this is a probe of a
                       demoted loop *)
  | Go_sequential  (** skip the check, run the invocation sequentially *)
  | Go_sample      (** run sequentially under the dependence sampler *)

type t

(** [create ()] makes a governor with no registered loops. Decisions
    for unregistered loops are always [Go_parallel] and nothing is
    recorded, so an installed-but-empty governor is inert. [obs]
    receives [governor_*] trace events (when tracing is enabled). *)
val create : ?params:params -> ?obs:Obs.t -> unit -> t

val params : t -> params

(** [register t loop_id ~profiled] puts a loop under governance.
    [profiled:false] marks a loop deployed without profile evidence: it
    starts in {!Sampling} (if [sample_n > 0]); profiled loops start in
    {!Parallel}. Re-registering an existing loop is a no-op. *)
val register : t -> int -> profiled:bool -> unit

(** Fleet-evidence warm start (the persistent-PGO ledger-export loop,
    {!Janus_pgo.Pgo}): register a loop whose aggregated cross-run
    history is suspect — earlier runs demoted it or watched its bounds
    checks fail. It starts in {!Probation} instead of {!Parallel}, so
    one more bad invocation demotes it immediately rather than after a
    full bad window, while [promote_k] good outcomes clear its record
    as usual. Re-registering an existing loop is a no-op. *)
val register_suspect : t -> int -> unit

(** Is this loop under governance? *)
val governed : t -> int -> bool

(** Current state, if governed. *)
val state : t -> int -> state option

(** Called from the MEM_BOUNDS_CHECK hook, which fires {e before}
    LOOP_INIT in the same invocation: computes (and caches) this
    invocation's decision and returns [true] when the runtime bounds
    check should be skipped entirely ([Go_sequential]/[Go_sample]) —
    a demoted loop stops paying the check cost. *)
val skip_check : t -> int -> bool

(** The decision for this invocation — the one cached by {!skip_check}
    if the loop's schedule has a check rule, computed fresh otherwise.
    Consumes the cache; call exactly once per invocation, at LOOP_INIT.
    [now] (virtual cycles) timestamps any probe event. *)
val decide : t -> int -> now:int -> decision

(** One runtime bounds-check evaluation: outcome and modelled cost. *)
val record_check : t -> int -> ok:bool -> cycles:int -> unit

(** One parallel invocation completed. [work] is the summed worker
    cycles the invocation realised, [cost] the cycles the main thread
    actually paid (init + slowest worker + finish + this invocation's
    check); [commits]/[aborts] are the STM deltas. The invocation is
    {e bad} when aborts outnumber commits or the realised speedup falls
    below [gain_pct]; window/hysteresis transitions happen here. *)
val record_parallel :
  t -> int -> now:int -> work:int -> cost:int -> commits:int ->
  aborts:int -> unit

(** A failed bounds check sent this invocation down the sequential
    fallback — always a bad outcome. *)
val record_fallback : t -> int -> now:int -> unit

(** A governor-sequential ([Go_sequential]) invocation finished,
    having cost [cycles]. *)
val record_seq : t -> int -> cycles:int -> unit

(** {2 Training-free sampling}

    The pair below brackets one [Go_sample] invocation. [sample_begin]
    installs the shadow-memory observer on [ctx] (a no-op if another
    observer — e.g. the offline profiler — is already installed);
    accesses outside globals+heap ([Layout.data_base ..
    Layout.heap_limit)) are ignored, as are accesses touching an
    address in [exclude] (privatised/reduction locations the schedule
    already handles). [read_iv] names the current iteration: the live
    induction-variable value, the online stand-in for the offline
    profiler's ITER counter. *)
val sample_begin :
  t -> int -> Machine.t -> read_iv:(unit -> int64) -> exclude:int list ->
  unit

(** Uninstalls the observer, folds the sample in, and — after
    [sample_n] samples — commits the loop to [Parallel] (no dependence
    seen) or [Sequential] (dependence found). *)
val sample_end : t -> int -> Machine.t -> now:int -> unit

(** {2 Reporting} *)

(** Immutable per-loop ledger snapshot. *)
type loop_stats = {
  loop_id : int;
  final : state;
  invocations : int;       (** decisions taken *)
  par_invocations : int;   (** completed parallel (incl. probes) *)
  seq_invocations : int;   (** governor-sequential invocations *)
  probes : int;
  samples : int;
  fallbacks : int;
  checks_passed : int;
  checks_failed : int;
  check_cycles : int;
  commits : int;
  aborts : int;
  par_work : int;          (** summed worker cycles over parallel invs *)
  par_cost : int;          (** main-thread cycles over parallel invs *)
  seq_cycles : int;
  demotions : int;
  promotions : int;
  sampled_dep : bool;      (** sampling saw a cross-iteration dep *)
}

(** All governed loops, sorted by loop id. *)
val snapshot : t -> loop_stats list

(** Mirror the ledgers into [adapt.*] counters (aggregate totals plus
    [adapt.loop.<id>.*] per-loop detail). *)
val publish_metrics : t -> Obs.t -> unit

(** Human-readable report for [janus_run --adapt-report]. *)
val pp_report : Format.formatter -> t -> unit
