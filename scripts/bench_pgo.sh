#!/usr/bin/env bash
# Benchmark the persistent-PGO loop: drive `janus_pgo iterate` on
# adv.alias (the benchmark whose training run under-observes an
# aliasing dependence) until the schedule digest converges, and emit
# one JSON object (to $1, default BENCH_pgo.json) recording the
# train-once baseline cycles, the converged cycles, the rounds to
# convergence and the number of flipped dependence verdicts. CI
# structurally diffs the fresh document against the committed baseline
# and asserts the converged schedule never loses to train-once.
# Requires `dune build` to have produced the binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_pgo.json}"
pgo_bin=_build/default/bin/janus_pgo_cli.exe
[ -x "$pgo_bin" ] || { echo "run dune build first: $pgo_bin missing" >&2; exit 1; }

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

bench=adv.alias
max_rounds=4

# The run is ungoverned (no --adapt): the point is that the merged
# fleet evidence alone re-derives the schedule the governor would
# otherwise have to discover over again in every process.
"$pgo_bin" iterate --bench "$bench" --store "$work/profiles" \
  --rounds "$max_rounds" | tee "$work/iterate.txt"

python3 - "$out" "$bench" "$max_rounds" "$work/iterate.txt" <<'PY'
import json, re, sys
out, bench, max_rounds, log = sys.argv[1:5]

rounds = []
summary = None
for line in open(log):
    m = re.match(r"round=(\d+) cycles=(\d+) schedule=(\w+) selected=\[([^\]]*)\] flipped=(\d+)", line)
    if m:
        rounds.append({
            "round": int(m.group(1)),
            "cycles": int(m.group(2)),
            "schedule_md5": m.group(3),
            "selected": [int(x) for x in m.group(4).split(",") if x],
            "flipped": int(m.group(5)),
        })
    m = re.match(r"converged=(\w+) rounds=(\d+) baseline-cycles=(\d+) final-cycles=(\d+)", line)
    if m:
        summary = {
            "converged": m.group(1) == "true",
            "rounds": int(m.group(2)),
            "baseline_cycles": int(m.group(3)),
            "final_cycles": int(m.group(4)),
        }

assert rounds and summary, "iterate output not parsed"
assert summary["converged"], "iteration did not converge"
assert summary["final_cycles"] <= summary["baseline_cycles"], \
    "converged schedule lost to train-once"

doc = {
    "benchmark": bench,
    "max_rounds": int(max_rounds),
    "round0_cycles": summary["baseline_cycles"],
    "converged_cycles": summary["final_cycles"],
    "rounds_to_convergence": summary["rounds"],
    "verdicts_flipped": sum(r["flipped"] for r in rounds),
    "improvement_pct": round(
        100.0 * (summary["baseline_cycles"] - summary["final_cycles"])
        / summary["baseline_cycles"], 2),
    "rounds": rounds,
}
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(json.dumps(doc, indent=2))
PY
