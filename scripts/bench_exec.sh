#!/usr/bin/env bash
# Benchmark the execution core: interpreted instructions per second on
# a native run of 410.bwaves, differential-fuzz throughput in cases per
# second, and the wall-clock of the full evaluation (`janus_eval all`)
# cold against a fresh persistent store and warm from it. Emits one
# JSON object (to $1, default BENCH_exec.json). CI structurally diffs
# the fresh document against the committed baseline and fails on a
# >20% interpreted-instrs/s regression. Requires `dune build` to have
# produced the binaries.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_exec.json}"
run_bin=_build/default/bin/janus_run.exe
fuzz_bin=_build/default/bin/janus_fuzz.exe
eval_bin=_build/default/bin/janus_eval.exe
suite_bin=_build/default/test/tools/suite_jx.exe
for b in "$run_bin" "$fuzz_bin" "$eval_bin" "$suite_bin"; do
  [ -x "$b" ] || { echo "run dune build first: $b missing" >&2; exit 1; }
done

work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT

now() { python3 -c 'import time; print(time.monotonic())'; }

native_scale=60000
fuzz_seed=5
fuzz_count=100

# -- interpreted instrs/s: one native bwaves run under the interpreter --
"$suite_bin" 410.bwaves "$work/bwaves.jx"
t0=$(now)
"$run_bin" "$work/bwaves.jx" --mode native --scale "$native_scale" \
  > "$work/native.txt"
t1=$(now)
native_s=$(python3 -c "print($t1 - $t0)")
# the run's own retired-instruction count, from the summary line
# `--- native: C cycles, I instructions, exit 0`
native_insns=$(sed -n 's/^--- native: [0-9]* cycles, \([0-9]*\) instructions, exit 0$/\1/p' "$work/native.txt")
[ -n "$native_insns" ] || { echo "no native summary line parsed" >&2; exit 1; }

# -- fuzz throughput: pinned-seed sweep of the full-stack oracle --
t0=$(now)
"$fuzz_bin" --seed "$fuzz_seed" --count "$fuzz_count" > "$work/fuzz.txt"
t1=$(now)
fuzz_s=$(python3 -c "print($t1 - $t0)")
grep -q " 0 FAIL " "$work/fuzz.txt" || { echo "fuzz run not clean" >&2; exit 1; }

# -- full evaluation: cold populates a store, warm reruns from it --
store="$work/store"
t0=$(now)
"$eval_bin" all --store-dir "$store" > "$work/eval_cold.txt"
t1=$(now)
eval_cold_s=$(python3 -c "print($t1 - $t0)")
t0=$(now)
"$eval_bin" all --store-dir "$store" > "$work/eval_warm.txt"
t1=$(now)
eval_warm_s=$(python3 -c "print($t1 - $t0)")
cmp "$work/eval_cold.txt" "$work/eval_warm.txt"

python3 - "$out" "$native_scale" "$native_insns" "$native_s" \
  "$fuzz_seed" "$fuzz_count" "$fuzz_s" "$eval_cold_s" "$eval_warm_s" <<'PY'
import json, sys
(out, native_scale, native_insns, native_s,
 fuzz_seed, fuzz_count, fuzz_s, eval_cold_s, eval_warm_s) = sys.argv[1:10]
native_s, fuzz_s = float(native_s), float(fuzz_s)
eval_cold_s, eval_warm_s = float(eval_cold_s), float(eval_warm_s)

doc = {
    "benchmark": "410.bwaves",
    "native_scale": int(native_scale),
    "native_instructions": int(native_insns),
    "native_seconds": round(native_s, 3),
    "native_instrs_per_second": round(int(native_insns) / native_s)
        if native_s > 0 else None,
    "fuzz_seed": int(fuzz_seed),
    "fuzz_count": int(fuzz_count),
    "fuzz_seconds": round(fuzz_s, 3),
    "fuzz_cases_per_second": round(int(fuzz_count) / fuzz_s, 2)
        if fuzz_s > 0 else None,
    "eval_all_cold_seconds": round(eval_cold_s, 3),
    "eval_all_warm_seconds": round(eval_warm_s, 3),
}
json.dump(doc, open(out, "w"), indent=2)
open(out, "a").write("\n")
print(json.dumps(doc, indent=2))
PY
