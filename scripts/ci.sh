#!/usr/bin/env bash
# CI entry point: build everything, run the test suite, then prove the
# example guests' generated rewrite schedules verify clean with the
# standalone verifier. Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== schedule verification over examples/guests =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
shopt -s nullglob
guests=(examples/guests/*.jc)
if [ ${#guests[@]} -eq 0 ]; then
  echo "no guests found" >&2
  exit 1
fi
for src in "${guests[@]}"; do
  name="$(basename "$src" .jc)"
  jx="$work/$name.jx"
  jrs="$work/$name.jrs"
  dune exec bin/jcc.exe -- "$src" -o "$jx"
  dune exec bin/janus_analyze.exe -- "$jx" --emit-schedule "$jrs" --verify \
    > "$work/$name.analyze.log"
  dune exec bin/jverify.exe -- "$jx" "$jrs"
  dune exec bin/jverify.exe -- --crosscheck "$jx" "$jrs"
done

echo "== evaluation determinism: --jobs 1 vs --jobs 4 =="
# the headline guarantee of the staged pipeline: the full evaluation is
# byte-identical whether rows are computed sequentially or fanned out
# over domains, and whether artifacts come from the cache or fresh
dune exec bin/janus_eval.exe -- all --jobs 1 --metrics \
  > "$work/eval_j1.txt" 2> "$work/eval_j1.metrics"
dune exec bin/janus_eval.exe -- all --jobs 4 --metrics \
  > "$work/eval_j4.txt" 2> "$work/eval_j4.metrics"
diff -u "$work/eval_j1.txt" "$work/eval_j4.txt"
echo "-- pipeline cache counters (--jobs 1) --"
grep -E '^(pipeline\.cache|pool)\.' "$work/eval_j1.metrics"
echo "-- pipeline cache counters (--jobs 4) --"
grep -E '^(pipeline\.cache|pool)\.' "$work/eval_j4.metrics"

echo "== experiment registry =="
dune exec bin/janus_eval.exe -- --list

echo "== adaptive governor: determinism and report =="
# governor decisions are functions of virtual cycles and counters only,
# so the adaptive experiment must be byte-identical however the rows
# are scheduled
dune exec bin/janus_eval.exe -- adapt --jobs 1 > "$work/adapt_j1.txt"
dune exec bin/janus_eval.exe -- adapt --jobs 4 > "$work/adapt_j4.txt"
cmp "$work/adapt_j1.txt" "$work/adapt_j4.txt"
trace_dir="_build/ci"
mkdir -p "$trace_dir"
dune exec test/tools/suite_jx.exe -- adv.alias "$work/adv_alias.jx"
dune exec bin/janus_run.exe -- "$work/adv_alias.jx" --scale 250 \
  --train-scale 40 --adapt-report "$trace_dir/adv_alias_adapt.txt" \
  > "$trace_dir/adv_alias.run.log"
cat "$trace_dir/adv_alias_adapt.txt"

echo "== differential fuzz smoke =="
# pinned-seed sweep of the generator + full-stack oracle; any violation
# leaves a shrunk reproducer for upload
fuzz_dir="_build/ci/fuzz"
mkdir -p "$fuzz_dir"
dune exec bin/janus_fuzz.exe -- --seed 5 --count 200 \
  --save-corpus --corpus-dir "$fuzz_dir"

echo "== fuzz oracle self-test (must fail) =="
# the self-test feeds the oracle a deliberately mislabelled kernel; a
# healthy oracle rejects it and exits non-zero, so success here is a bug
if dune exec bin/janus_fuzz.exe -- --self-test; then
  echo "oracle self-test did NOT catch the mislabelled kernel" >&2
  exit 1
fi

echo "== loop fission: inert when off, verified when on =="
# nothing splits in saxpy, so --fission must not change a schedule byte
dune exec bin/jcc.exe -- examples/guests/saxpy.jc -o "$work/saxpy_fi.jx"
dune exec bin/janus_analyze.exe -- "$work/saxpy_fi.jx" \
  --emit-schedule "$work/saxpy_fi_off.jrs" > /dev/null
dune exec bin/janus_analyze.exe -- "$work/saxpy_fi.jx" --fission \
  --emit-schedule "$work/saxpy_fi_on.jrs" > /dev/null
cmp "$work/saxpy_fi_off.jrs" "$work/saxpy_fi_on.jrs"
# the chain+stream guest splits: LOOP_FISSION ships and lints clean
dune exec test/tools/suite_jx.exe -- adv.fission "$work/adv_fission.jx"
dune exec bin/janus_analyze.exe -- "$work/adv_fission.jx" --fission \
  --emit-schedule "$work/adv_fission.jrs" --verify \
  > "$work/adv_fission.analyze.log"
dune exec bin/jrs_dump.exe -- "$work/adv_fission.jrs" | grep -q LOOP_FISSION
dune exec bin/jverify.exe -- "$work/adv_fission.jx" "$work/adv_fission.jrs"
# end-to-end: fissioned output matches native, fission.* metrics print
dune exec bin/janus_run.exe -- "$work/adv_fission.jx" --mode native \
  --scale 40 --train-scale 6 > "$work/adv_fission.native.out"
dune exec bin/janus_run.exe -- "$work/adv_fission.jx" --fission --threads 4 \
  --scale 40 --train-scale 6 --metrics > "$work/adv_fission.fission.out"
diff <(sed -n '/^---/q;p' "$work/adv_fission.native.out") \
     <(sed -n '/^---/q;p' "$work/adv_fission.fission.out")
echo "-- fission counters --"
grep -E '^(fission|rt\.fission)' "$work/adv_fission.fission.out"
grep -Eq '^fission\.split +[1-9]' "$work/adv_fission.fission.out"
grep -Eq '^fission\.demoted +0' "$work/adv_fission.fission.out"

echo "== mixed fuzz smoke (fission ground-truth labels) =="
dune exec bin/janus_fuzz.exe -- --mixed --seed 7 --count 120 \
  --save-corpus --corpus-dir "$fuzz_dir"

echo "== traced benchmark run =="
# run one real benchmark with tracing on and prove the exported Chrome
# trace parses and covers every event category the run exercises:
# translation, linking, library resolution, rules, loop scheduling,
# bounds checks and the STM
dune exec test/tools/suite_jx.exe -- 410.bwaves "$work/bwaves.jx"
dune exec bin/janus_run.exe -- "$work/bwaves.jx" --scale 300 \
  --train-scale 300 --trace "$trace_dir/bwaves_trace.json" --metrics \
  > "$trace_dir/bwaves.run.log"
dune exec test/tools/trace_check.exe -- "$trace_dir/bwaves_trace.json" \
  block_translated fragment_linked lib_resolved rule_fired \
  loop_init loop_finish chunk_dispatched check_passed tx_start tx_commit

echo "CI OK"
