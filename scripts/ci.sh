#!/usr/bin/env bash
# CI entry point: build everything, run the test suite, then prove the
# example guests' generated rewrite schedules verify clean with the
# standalone verifier. Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== schedule verification over examples/guests =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
shopt -s nullglob
guests=(examples/guests/*.jc)
if [ ${#guests[@]} -eq 0 ]; then
  echo "no guests found" >&2
  exit 1
fi
for src in "${guests[@]}"; do
  name="$(basename "$src" .jc)"
  jx="$work/$name.jx"
  jrs="$work/$name.jrs"
  dune exec bin/jcc.exe -- "$src" -o "$jx"
  dune exec bin/janus_analyze.exe -- "$jx" --emit-schedule "$jrs" --verify \
    > "$work/$name.analyze.log"
  dune exec bin/jverify.exe -- "$jx" "$jrs"
  dune exec bin/jverify.exe -- --crosscheck "$jx" "$jrs"
done
echo "CI OK"
