#!/usr/bin/env bash
# CI entry point: build everything, run the test suite, then prove the
# example guests' generated rewrite schedules verify clean with the
# standalone verifier. Run from the repository root.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== schedule verification over examples/guests =="
work="$(mktemp -d)"
trap 'rm -rf "$work"' EXIT
shopt -s nullglob
guests=(examples/guests/*.jc)
if [ ${#guests[@]} -eq 0 ]; then
  echo "no guests found" >&2
  exit 1
fi
for src in "${guests[@]}"; do
  name="$(basename "$src" .jc)"
  jx="$work/$name.jx"
  jrs="$work/$name.jrs"
  dune exec bin/jcc.exe -- "$src" -o "$jx"
  dune exec bin/janus_analyze.exe -- "$jx" --emit-schedule "$jrs" --verify \
    > "$work/$name.analyze.log"
  dune exec bin/jverify.exe -- "$jx" "$jrs"
  dune exec bin/jverify.exe -- --crosscheck "$jx" "$jrs"
done

echo "== evaluation determinism: jobs x store, 4 ways =="
# the headline guarantee of the staged pipeline: the full evaluation is
# byte-identical whether rows are computed sequentially or fanned out
# over domains, and whether artifacts are fresh, memory-cached, or
# loaded back from a persistent store directory by a later process
store_dir="$work/artifact-store"
dune exec bin/janus_eval.exe -- all --jobs 1 --metrics \
  --store-dir "$store_dir" \
  > "$work/eval_j1_cold.txt" 2> "$work/eval_j1_cold.metrics"
dune exec bin/janus_eval.exe -- all --jobs 1 --metrics \
  --store-dir "$store_dir" \
  > "$work/eval_j1_warm.txt" 2> "$work/eval_j1_warm.metrics"
dune exec bin/janus_eval.exe -- all --jobs 4 --metrics \
  > "$work/eval_j4_cold.txt" 2> "$work/eval_j4_cold.metrics"
dune exec bin/janus_eval.exe -- all --jobs 4 --metrics \
  --store-dir "$store_dir" \
  > "$work/eval_j4_warm.txt" 2> "$work/eval_j4_warm.metrics"
diff -u "$work/eval_j1_cold.txt" "$work/eval_j1_warm.txt"
diff -u "$work/eval_j1_cold.txt" "$work/eval_j4_cold.txt"
diff -u "$work/eval_j1_cold.txt" "$work/eval_j4_warm.txt"
# the warm rerun really did come from disk: a fresh process with an
# empty memory layer must report disk hits and no recomputation
grep -Eq '^pipeline\.cache\.disk\.hits +[1-9]' "$work/eval_j1_warm.metrics"
grep -Eq '^pipeline\.cache\.misses +0$' "$work/eval_j1_warm.metrics"
echo "-- pipeline cache counters (--jobs 1, cold) --"
grep -E '^(pipeline\.cache|pool)\.' "$work/eval_j1_cold.metrics"
echo "-- pipeline cache counters (--jobs 4, warm store) --"
grep -E '^(pipeline\.cache|pool)\.' "$work/eval_j4_warm.metrics"

echo "== superinstruction fusion is inert at schedule level =="
# fragments fuse hot instruction pairs by default; the whole evaluation
# must not be able to tell (outputs, cycles, digests byte-identical)
dune exec bin/janus_eval.exe -- all --no-fuse > "$work/eval_nofuse.txt"
cmp "$work/eval_j1_cold.txt" "$work/eval_nofuse.txt"

echo "== experiment registry =="
dune exec bin/janus_eval.exe -- --list

echo "== janus_served: warm answers over a unix socket =="
# start the daemon from the already-built binary (dune exec would
# contend for the build lock with the client invocations below)
served=_build/default/bin/janus_served.exe
sock="$work/janus_served.sock"
served_store="$work/served-store"
"$served" serve --socket "$sock" --store-dir "$served_store" \
  > "$work/served.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "daemon never bound $sock" >&2; exit 1; }
# same binary twice: the second schedule must be a warm store answer
# and byte-identical to the first
"$served" schedule --socket "$sock" --bench 410.bwaves \
  --out "$work/served_s1.jrs" | tee "$work/served_s1.txt"
"$served" schedule --socket "$sock" --bench 410.bwaves \
  --out "$work/served_s2.jrs" | tee "$work/served_s2.txt"
cmp "$work/served_s1.jrs" "$work/served_s2.jrs"
grep -q 'cache-hit=false' "$work/served_s1.txt"
grep -q 'cache-hit=true' "$work/served_s2.txt"
"$served" analyse --socket "$sock" --bench 410.bwaves > "$work/served_a.txt"
grep -q 'cache-hit=true' "$work/served_a.txt"
echo "-- served counters --"
"$served" metrics --socket "$sock" | tee "$work/served.metrics"
grep -Eq '^served\.schedule +2' "$work/served.metrics"
grep -Eq '^served\.store_hits +[1-9]' "$work/served.metrics"
grep -Eq '^pipeline\.cache\.hits +[1-9]' "$work/served.metrics"
"$served" stop --socket "$sock"
wait "$served_pid"
# a restarted daemon over the same store directory answers from disk
"$served" serve --socket "$sock" --store-dir "$served_store" \
  >> "$work/served.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
"$served" schedule --socket "$sock" --bench 410.bwaves \
  --out "$work/served_s3.jrs" > "$work/served_s3.txt"
grep -q 'cache-hit=true' "$work/served_s3.txt"
cmp "$work/served_s1.jrs" "$work/served_s3.jrs"
"$served" stop --socket "$sock"
wait "$served_pid"

echo "== persistent PGO: flag-off inertness =="
# an empty profile store (or none) must not change a byte of the
# evaluation: evidence only enters selection when runs are stored
mkdir -p "$work/pgo-empty"
dune exec bin/janus_eval.exe -- all --profile-dir "$work/pgo-empty" \
  > "$work/eval_pgo_off.txt"
cmp "$work/eval_j1_cold.txt" "$work/eval_pgo_off.txt"

echo "== persistent PGO: iterate to a stable schedule =="
# adv.alias under-observes an aliasing dependence at training scale;
# one fleet round must flip the verdict, beat the train-once cycles,
# and the next round must reproduce the schedule byte-for-byte
pgo_bin=_build/default/bin/janus_pgo_cli.exe
"$pgo_bin" iterate --bench adv.alias --store "$work/pgo-iter" --rounds 2 \
  | tee "$work/pgo_iter.txt"
grep -q 'converged=true' "$work/pgo_iter.txt"
r0_cycles=$(sed -n 's/^round=0 cycles=\([0-9]*\) .*/\1/p' "$work/pgo_iter.txt")
r1_cycles=$(sed -n 's/^round=1 cycles=\([0-9]*\) .*/\1/p' "$work/pgo_iter.txt")
r1_md5=$(sed -n 's/^round=1 .*schedule=\([0-9a-f]*\) .*/\1/p' "$work/pgo_iter.txt")
r2_md5=$(sed -n 's/^round=2 .*schedule=\([0-9a-f]*\) .*/\1/p' "$work/pgo_iter.txt")
[ "$r1_md5" = "$r2_md5" ] || { echo "round 2 schedule not byte-stable" >&2; exit 1; }
[ "$r1_cycles" -lt "$r0_cycles" ] || { echo "evidence-fed round did not beat train-once" >&2; exit 1; }
grep -Eq '^round=1 .*flipped=[1-9]' "$work/pgo_iter.txt"

echo "== persistent PGO: daemon ingest and restart =="
# a fleet member collects its profile locally, ships the .jprof to the
# daemon, and every later schedule answer - including from a restarted
# daemon with a cold pipeline store - reflects the merged evidence
pgo_served_profiles="$work/pgo-served-profiles"
pgo_served_store="$work/pgo-served-store"
"$served" serve --socket "$sock" --store-dir "$pgo_served_store" \
  --profile-dir "$pgo_served_profiles" > "$work/pgo_served.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
[ -S "$sock" ] || { echo "pgo daemon never bound $sock" >&2; exit 1; }
"$served" schedule --socket "$sock" --bench adv.alias \
  --out "$work/pgo_s_before.jrs" | tee "$work/pgo_s_before.txt"
grep -q 'gen=-' "$work/pgo_s_before.txt"
# collect the fleet member's run at the aliasing scale into a local
# store, then upload the .jprof it wrote
"$pgo_bin" collect --bench adv.alias --store "$work/pgo-fleet" --scale 250 \
  | tee "$work/pgo_collect.txt"
jprof=$(ls "$work/pgo-fleet"/*.jprof)
"$served" upload --socket "$sock" --file "$jprof" | tee "$work/pgo_upload.txt"
grep -Eq 'runs=1 total-runs=1' "$work/pgo_upload.txt"
"$served" schedule --socket "$sock" --bench adv.alias \
  --out "$work/pgo_s_after.jrs" | tee "$work/pgo_s_after.txt"
grep -Eq 'gen=[0-9a-f]+' "$work/pgo_s_after.txt"
if cmp -s "$work/pgo_s_before.jrs" "$work/pgo_s_after.jrs"; then
  echo "uploaded evidence did not change the served schedule" >&2; exit 1
fi
"$served" metrics --socket "$sock" | tee "$work/pgo_served.metrics"
grep -Eq '^pgo\.ingested +1' "$work/pgo_served.metrics"
grep -Eq '^pgo\.runs +[1-9]' "$work/pgo_served.metrics"
grep -Eq '^pgo\.store\.errors +0' "$work/pgo_served.metrics"
"$served" stop --socket "$sock"
wait "$served_pid"
# restart: fresh process, fresh pipeline store, same profile directory
"$served" serve --socket "$sock" --store-dir "$pgo_served_store-2" \
  --profile-dir "$pgo_served_profiles" >> "$work/pgo_served.log" 2>&1 &
served_pid=$!
for _ in $(seq 1 100); do
  [ -S "$sock" ] && break
  sleep 0.1
done
"$served" schedule --socket "$sock" --bench adv.alias \
  --out "$work/pgo_s_restart.jrs" > "$work/pgo_s_restart.txt"
cmp "$work/pgo_s_after.jrs" "$work/pgo_s_restart.jrs"
"$served" stop --socket "$sock"
wait "$served_pid"

echo "== PGO convergence benchmark =="
scripts/bench_pgo.sh "$work/BENCH_pgo.json"
# committed baseline must stay structurally comparable to a fresh run,
# and the converged schedule may never lose to train-once
python3 - "$work/BENCH_pgo.json" BENCH_pgo.json <<'PY'
import json, sys
fresh, baseline = (json.load(open(p)) for p in sys.argv[1:3])
assert sorted(fresh) == sorted(baseline), (sorted(fresh), sorted(baseline))
assert fresh["converged_cycles"] <= fresh["round0_cycles"], fresh
assert fresh["verdicts_flipped"] >= 1, fresh
PY

echo "== analysis benchmark =="
scripts/bench_analysis.sh "$work/BENCH_analysis.json"
# committed baseline must stay structurally comparable to a fresh run
python3 - "$work/BENCH_analysis.json" BENCH_analysis.json <<'PY'
import json, sys
fresh, baseline = (json.load(open(p)) for p in sys.argv[1:3])
assert sorted(fresh) == sorted(baseline), (sorted(fresh), sorted(baseline))
assert fresh["warm_hit_rate"] >= 0.9, fresh
PY

echo "== execution benchmark =="
scripts/bench_exec.sh "$work/BENCH_exec.json"
# committed baseline must stay structurally comparable to a fresh run,
# and the interpreter may not lose more than 20% of its instrs/s
python3 - "$work/BENCH_exec.json" BENCH_exec.json <<'PY'
import json, sys
fresh, baseline = (json.load(open(p)) for p in sys.argv[1:3])
assert sorted(fresh) == sorted(baseline), (sorted(fresh), sorted(baseline))
ips, base = fresh["native_instrs_per_second"], baseline["native_instrs_per_second"]
assert ips >= 0.8 * base, \
    f"interpreted instrs/s regressed >20%: {ips} vs committed {base}"
PY

echo "== adaptive governor: determinism and report =="
# governor decisions are functions of virtual cycles and counters only,
# so the adaptive experiment must be byte-identical however the rows
# are scheduled
dune exec bin/janus_eval.exe -- adapt --jobs 1 > "$work/adapt_j1.txt"
dune exec bin/janus_eval.exe -- adapt --jobs 4 > "$work/adapt_j4.txt"
cmp "$work/adapt_j1.txt" "$work/adapt_j4.txt"
trace_dir="_build/ci"
mkdir -p "$trace_dir"
dune exec test/tools/suite_jx.exe -- adv.alias "$work/adv_alias.jx"
dune exec bin/janus_run.exe -- "$work/adv_alias.jx" --scale 250 \
  --train-scale 40 --adapt-report "$trace_dir/adv_alias_adapt.txt" \
  > "$trace_dir/adv_alias.run.log"
cat "$trace_dir/adv_alias_adapt.txt"

echo "== differential fuzz smoke =="
# pinned-seed sweep of the generator + full-stack oracle; any violation
# leaves a shrunk reproducer for upload
fuzz_dir="_build/ci/fuzz"
mkdir -p "$fuzz_dir"
dune exec bin/janus_fuzz.exe -- --seed 5 --count 200 \
  --save-corpus --corpus-dir "$fuzz_dir"

echo "== fuzz oracle self-test (must fail) =="
# the self-test feeds the oracle a deliberately mislabelled kernel; a
# healthy oracle rejects it and exits non-zero, so success here is a bug
if dune exec bin/janus_fuzz.exe -- --self-test; then
  echo "oracle self-test did NOT catch the mislabelled kernel" >&2
  exit 1
fi

echo "== loop fission: inert when off, verified when on =="
# nothing splits in saxpy, so --fission must not change a schedule byte
dune exec bin/jcc.exe -- examples/guests/saxpy.jc -o "$work/saxpy_fi.jx"
dune exec bin/janus_analyze.exe -- "$work/saxpy_fi.jx" \
  --emit-schedule "$work/saxpy_fi_off.jrs" > /dev/null
dune exec bin/janus_analyze.exe -- "$work/saxpy_fi.jx" --fission \
  --emit-schedule "$work/saxpy_fi_on.jrs" > /dev/null
cmp "$work/saxpy_fi_off.jrs" "$work/saxpy_fi_on.jrs"
# the chain+stream guest splits: LOOP_FISSION ships and lints clean
dune exec test/tools/suite_jx.exe -- adv.fission "$work/adv_fission.jx"
dune exec bin/janus_analyze.exe -- "$work/adv_fission.jx" --fission \
  --emit-schedule "$work/adv_fission.jrs" --verify \
  > "$work/adv_fission.analyze.log"
# capture then grep: `| grep -q` would close the pipe at first match
# and SIGPIPE the dumper, failing the script under pipefail
dune exec bin/jrs_dump.exe -- "$work/adv_fission.jrs" > "$work/adv_fission.dump"
grep -q LOOP_FISSION "$work/adv_fission.dump"
dune exec bin/jverify.exe -- "$work/adv_fission.jx" "$work/adv_fission.jrs"
# end-to-end: fissioned output matches native, fission.* metrics print
dune exec bin/janus_run.exe -- "$work/adv_fission.jx" --mode native \
  --scale 40 --train-scale 6 > "$work/adv_fission.native.out"
dune exec bin/janus_run.exe -- "$work/adv_fission.jx" --fission --threads 4 \
  --scale 40 --train-scale 6 --metrics > "$work/adv_fission.fission.out"
diff <(sed -n '/^---/q;p' "$work/adv_fission.native.out") \
     <(sed -n '/^---/q;p' "$work/adv_fission.fission.out")
echo "-- fission counters --"
grep -E '^(fission|rt\.fission)' "$work/adv_fission.fission.out"
grep -Eq '^fission\.split +[1-9]' "$work/adv_fission.fission.out"
grep -Eq '^fission\.demoted +0' "$work/adv_fission.fission.out"

echo "== mixed fuzz smoke (fission ground-truth labels) =="
dune exec bin/janus_fuzz.exe -- --mixed --seed 7 --count 120 \
  --save-corpus --corpus-dir "$fuzz_dir"

echo "== traced benchmark run =="
# run one real benchmark with tracing on and prove the exported Chrome
# trace parses and covers every event category the run exercises:
# translation, linking, library resolution, rules, loop scheduling,
# bounds checks and the STM
dune exec test/tools/suite_jx.exe -- 410.bwaves "$work/bwaves.jx"
dune exec bin/janus_run.exe -- "$work/bwaves.jx" --scale 300 \
  --train-scale 300 --trace "$trace_dir/bwaves_trace.json" --metrics \
  > "$trace_dir/bwaves.run.log"
dune exec test/tools/trace_check.exe -- "$trace_dir/bwaves_trace.json" \
  block_translated fragment_linked lib_resolved rule_fired \
  loop_init loop_finish chunk_dispatched check_passed tx_start tx_commit

echo "CI OK"
