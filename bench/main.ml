(* The benchmark harness.

   Running this executable first regenerates every table and figure of
   the paper's evaluation (the rows/series of §III), then runs one
   Bechamel microbenchmark per experiment measuring the cost of the
   machinery that produces it (analysis, profiling, schedule
   generation, parallel execution, ...) on training-scale workloads. *)

open Bechamel
open Toolkit
module Suite = Janus_suite.Suite
module Janus = Janus_core.Janus
module Eval = Janus_core.Eval
module Analysis = Janus_analysis.Analysis
module Profiler = Janus_profile.Profiler

let bench_of name f = Test.make ~name (Staged.stage f)

(* pre-compiled artefacts shared by the micro-benchmarks *)
let lbm = Suite.find_exn "470.lbm"
let bwaves = Suite.find_exn "410.bwaves"
let gems = Suite.find_exn "459.GemsFDTD"
let milc = Suite.find_exn "433.milc"
let lbm_img = Suite.compile lbm
let bwaves_img = Suite.compile bwaves
let gems_img = Suite.compile gems
let milc_img = Suite.compile milc
let lbm_analysis = Analysis.analyse_image lbm_img

(* Fig. 6: classify one binary's loops (static analysis + profiling) *)
let fig6_bench =
  bench_of "fig6_loop_classification" (fun () ->
      let t = Analysis.analyse_image milc_img in
      let _cov = Profiler.run_coverage ~input:(Suite.train_input milc) milc_img t in
      let _deps =
        Profiler.run_dependence ~input:(Suite.train_input milc) milc_img t
      in
      ())

(* Fig. 7: one full pipeline run (training scale) *)
let fig7_bench =
  bench_of "fig7_speedup_configs" (fun () ->
      ignore
        (Janus.parallelise
           ~cfg:(Janus.config ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input lbm)
           ~input:(Suite.train_input lbm) lbm_img))

(* Fig. 8: a breakdown-producing single-thread run *)
let fig8_bench =
  bench_of "fig8_breakdown" (fun () ->
      ignore
        (Janus.parallelise
           ~cfg:(Janus.config ~threads:1 ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input milc)
           ~input:(Suite.train_input milc) milc_img))

(* Table I: analysis + schedule generation incl. bounds-check descriptors *)
let table1_bench =
  bench_of "table1_bounds_checks" (fun () ->
      ignore
        (Janus.prepare
           ~cfg:(Janus.config ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input gems) gems_img))

(* Fig. 9: one parallel execution at 4 threads *)
let fig9_bench =
  let prepared =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input lbm)
      lbm_img
  in
  bench_of "fig9_thread_scaling" (fun () ->
      ignore
        (Janus.run_parallel
           ~cfg:(Janus.config ~threads:4 ~fuel:100_000_000 ())
           ~input:(Suite.train_input lbm) prepared))

(* Fig. 10: schedule generation + serialisation *)
let fig10_bench =
  bench_of "fig10_schedule_size" (fun () ->
      let selected =
        List.filter_map
          (fun (r : Janus_analysis.Loopanal.report) ->
             match Analysis.eligibility r with
             | Analysis.Eligible_static ->
               Some (r, Janus_schedule.Desc.Chunked)
             | _ -> None)
          lbm_analysis.Analysis.reports
      in
      let sched, _ =
        Janus_analysis.Rulegen.parallel_schedule lbm_analysis.Analysis.cfg
          selected
      in
      ignore (Janus_schedule.Schedule.to_bytes sched))

(* Fig. 11: an auto-parallelising compile *)
let fig11_bench =
  bench_of "fig11_compiler_comparison" (fun () ->
      ignore
        (Suite.compile
           ~options:
             { Janus_jcc.Jcc.default_options with
               vendor = Janus_jcc.Jcc.Icc; autopar = 8 }
           milc))

(* Fig. 12: an AVX compile + analysis of the harder binary *)
let fig12_bench =
  bench_of "fig12_opt_levels" (fun () ->
      let img =
        Suite.compile ~options:{ Janus_jcc.Jcc.default_options with avx = true }
          bwaves
      in
      ignore (Analysis.analyse_image img))

(* ablations called out in DESIGN.md *)
let ablation_policy_bench =
  let prepared =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input lbm)
      lbm_img
  in
  bench_of "ablation_round_robin" (fun () ->
      ignore
        (Janus.run_parallel
           ~cfg:
             (Janus.config
                ~force_policy:(Janus_schedule.Desc.Round_robin 16)
                ~fuel:100_000_000 ())
           ~input:(Suite.train_input lbm) prepared))

let ablation_stm_bench =
  bench_of "ablation_stm_speculation" (fun () ->
      ignore
        (Janus.parallelise
           ~cfg:(Janus.config ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input bwaves)
           ~input:(Suite.train_input bwaves) bwaves_img))

let ablation_stm_everywhere_bench =
  let prepared =
    Janus.prepare ~cfg:(Janus.config ()) ~train_input:(Suite.train_input lbm)
      lbm_img
  in
  bench_of "ablation_stm_everywhere" (fun () ->
      ignore
        (Janus.run_parallel
           ~cfg:(Janus.config ~stm_everywhere:true ~fuel:100_000_000 ())
           ~input:(Suite.train_input lbm) prepared))

(* the DOACROSS future-work extension on a recurrence-bearing workload *)
let extension_doacross_bench =
  bench_of "extension_doacross" (fun () ->
      ignore
        (Janus.parallelise
           ~cfg:(Janus.config ~use_doacross:true ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input milc)
           ~input:(Suite.train_input milc) milc_img))

(* the software-prefetching future-work extension on a streaming
   workload, under the cold-line cache-miss model *)
let extension_prefetch_bench =
  bench_of "extension_prefetch" (fun () ->
      ignore
        (Janus.parallelise
           ~cfg:
             (Janus.config ~prefetch:true ~model_cache:true
                ~fuel:100_000_000 ())
           ~train_input:(Suite.train_input lbm)
           ~input:(Suite.train_input lbm) lbm_img))

let tests =
  Test.make_grouped ~name:"janus"
    [
      fig6_bench; fig7_bench; fig8_bench; table1_bench; fig9_bench;
      fig10_bench; fig11_bench; fig12_bench; ablation_policy_bench;
      ablation_stm_bench; ablation_stm_everywhere_bench;
      extension_doacross_bench; extension_prefetch_bench;
    ]

let run_benchmarks () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) ~kde:(Some 10) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Fmt.pr "@.Bechamel microbenchmarks (per-experiment machinery):@.";
  Hashtbl.iter
    (fun name result ->
       match Analyze.OLS.estimates result with
       | Some [ est ] -> Fmt.pr "  %-40s %12.0f ns/run@." name est
       | _ -> Fmt.pr "  %-40s (no estimate)@." name)
    results

let regenerate_figures ~jobs ~store_dir =
  Fmt.pr "=== Janus evaluation: regenerating all tables and figures ===@.@.";
  (* one artifact store for the whole regeneration, so experiments
     share compiles, analyses and profiles; with --jobs > 1 the
     per-benchmark rows additionally fan out over domains, and with
     --store-dir the artifacts persist across harness runs (output is
     byte-identical in every combination) *)
  let store = Janus_core.Pipeline.store ?dir:store_dir () in
  let go pool =
    let ctx = Eval.ctx ~store ?pool () in
    Fmt.pr "%a@." Eval.pp_fig6 (Eval.fig6 ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig7 (Eval.fig7 ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig8 (Eval.fig8 ~ctx ());
    Fmt.pr "%a@." Eval.pp_table1 (Eval.table1 ~ctx ());
    Fmt.pr "%a@." Eval.pp_excall (Eval.excall_footprint ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig9 (Eval.fig9 ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig10 (Eval.fig10 ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig11 (Eval.fig11 ~ctx ());
    Fmt.pr "%a@." Eval.pp_fig12 (Eval.fig12 ~ctx ());
    Fmt.pr "%a@." Eval.pp_ext_doacross (Eval.ext_doacross ~ctx ());
    Fmt.pr "%a@." Eval.pp_ext_prefetch (Eval.ext_prefetch ~ctx ())
  in
  if jobs > 1 then
    Janus_pool.Pool.with_pool ~jobs (fun p -> go (Some p))
  else go None

let () =
  let args = Array.to_list Sys.argv in
  let bench_only = List.mem "--bench-only" args in
  (* a valued option as the last argument is an error, not a silent
     fall-through to the default *)
  let missing_value flag =
    Fmt.epr "bench: %s expects a value@." flag;
    exit 2
  in
  let jobs =
    let rec find = function
      | [ "--jobs" ] -> missing_value "--jobs"
      | "--jobs" :: n :: _ -> (
          match int_of_string_opt n with
          | Some n when n >= 1 -> n
          | _ ->
            Fmt.epr "bench: --jobs expects a positive integer, got %S@." n;
            exit 2)
      | _ :: rest -> find rest
      | [] -> 1
    in
    find args
  in
  let store_dir =
    let rec find = function
      | [ "--store-dir" ] -> missing_value "--store-dir"
      | "--store-dir" :: d :: _ -> Some d
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  if not bench_only then regenerate_figures ~jobs ~store_dir;
  run_benchmarks ()
