(* Speculation on dynamically discovered code (§II-E3): a hot loop
   calling pow@plt — code the static analyser never sees — is
   parallelised by wrapping each call in a software transaction.

     dune exec examples/speculation_demo.exe *)

module Janus = Janus_core.Janus
module Obs = Janus_obs.Obs

let source =
  "extern double pow(double, double);\n\
   double a[2048]; double b[2048];\n\
   int main() {\n\
   \  int n = read_int();\n\
   \  for (int i = 0; i < n; i++) { b[i] = (double)(i % 7 + 1); }\n\
   \  for (int i = 0; i < n; i++) { a[i] = pow(b[i], 3.0) * 0.25; }\n\
   \  double s = 0.0;\n\
   \  for (int i = 0; i < n; i++) { s += a[i]; }\n\
   \  print_float(s);\n\
   \  return 0;\n\
   }"

let () =
  let image = Janus_jcc.Jcc.compile source in
  let native = Janus.run_native ~input:[ 2048L ] image in
  let result =
    Janus.parallelise ~cfg:(Janus.config ~trace:true ()) ~train_input:[ 256L ]
      ~input:[ 2048L ] image
  in
  Fmt.pr "native: %s   janus: %s   (%.2fx)@."
    (String.trim native.Janus.output)
    (String.trim result.Janus.output)
    (Janus.speedup ~native ~run:result);
  Fmt.pr "software transactions: %d committed, %d aborted@."
    result.Janus.stm_commits result.Janus.stm_aborts;
  Fmt.pr "(pow only reads its coefficient table, so speculation never\n\
          conflicts — the behaviour the paper reports for bwaves)@.";
  (* the run was traced, so the commit/abort timeline is in the event
     buffer — print the first few transactions per worker *)
  (match result.Janus.obs with
   | Some obs ->
     let tx_events =
       List.filter
         (fun (e : Obs.event) ->
            match Obs.category e.Obs.kind with
            | "tx_start" | "tx_commit" | "tx_abort" | "lib_resolved" -> true
            | _ -> false)
         (Obs.events obs)
     in
     Fmt.pr "transaction timeline (first 12 of %d events):@."
       (List.length tx_events);
     List.iteri
       (fun i e -> if i < 12 then Fmt.pr "  %a@." Obs.pp_event e)
       tx_events
   | None -> assert false);
  assert (String.equal native.Janus.output result.Janus.output);
  assert (result.Janus.stm_commits > 0)
